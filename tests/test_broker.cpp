// SweepBroker (serve/broker.h): warm hits bypass the pool, single-flight
// deduplication, priority ordering, deadline expiry, drain semantics, the
// counter invariant, and the load-bearing guarantee of the whole refactor:
// a sweep resolved through the broker is bit-identical to a direct
// run_sweep at every --jobs x --shards combination.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "harness/harness.h"
#include "harness/sweepcache.h"
#include "serve/broker.h"

namespace bricksim::serve {
namespace {

namespace fs = std::filesystem;
using harness::Sweep;
using harness::SweepConfig;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// One platform, serial, at 64^3: cheap enough to simulate many times.
/// `stencil_radius` selects distinct fingerprints within one test.
SweepConfig small_config(int stencil_radius = 1) {
  SweepConfig config;
  config.domain = {64, 64, 64};
  config.platforms = {model::paper_platforms().front()};
  config.stencils = {dsl::Stencil::star(stencil_radius)};
  config.variants = {codegen::Variant::Array};
  config.jobs = 1;
  return config;
}

std::string dump(const Sweep& sweep) {
  return harness::sweep_to_json(sweep).dump();
}

/// A gate the pre_run_hook parks leaders on, so tests can build up a
/// queue / attach followers while a simulation is provably in flight.
class Gate {
 public:
  void open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

long invariant_lhs(const BrokerCounters& c) { return c.requests; }
long invariant_rhs(const BrokerCounters& c) {
  return c.warm_memo + c.coalesced + c.cold_misses + c.rejected +
         c.overloaded;
}

TEST(Broker, WarmHitsNeverTouchThePool) {
  SweepBroker broker({"", false, 2});
  const SweepConfig config = small_config();

  const SweepResponse cold = broker.request(config);
  ASSERT_EQ(cold.status, RequestStatus::Simulated);
  ASSERT_NE(cold.sweep, nullptr);
  EXPECT_EQ(cold.fingerprint, harness::fingerprint(config));

  const SweepResponse warm = broker.request(config);
  EXPECT_EQ(warm.status, RequestStatus::WarmMemo);
  EXPECT_EQ(warm.sweep, cold.sweep);  // shared, not copied

  // The async path serves warm hits synchronously too: the ticket is
  // already terminal and nothing was ever enqueued.
  const Ticket ticket = broker.submit(config);
  EXPECT_EQ(ticket.admission, RequestStatus::WarmMemo);
  EXPECT_EQ(ticket.result.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(ticket.result.get().sweep, cold.sweep);

  const BrokerCounters c = broker.counters();
  EXPECT_EQ(c.requests, 3);
  EXPECT_EQ(c.cold_misses, 1);
  EXPECT_EQ(c.warm_memo, 2);
  EXPECT_EQ(c.enqueued, 0);  // the sync cold miss ran inline
  EXPECT_EQ(c.simulated, 1);
  EXPECT_EQ(invariant_lhs(c), invariant_rhs(c));
}

TEST(Broker, SingleFlightColdStorm) {
  // N identical cold submits while the leader is parked: exactly one
  // simulation, every follower Coalesced onto the same shared sweep.
  constexpr int kFollowers = 15;
  SweepBroker broker({"", false, 4});
  Gate gate;
  std::atomic<int> simulations{0};
  broker.set_pre_run_hook([&](const std::string&) {
    simulations.fetch_add(1);
    gate.wait();
  });

  const SweepConfig config = small_config();
  std::vector<Ticket> tickets;
  tickets.push_back(broker.submit(config));
  EXPECT_EQ(tickets[0].admission, RequestStatus::Queued);
  // The leader may not have been dequeued yet; followers coalesce either
  // onto the queued entry or the running one -- both count.
  for (int i = 0; i < kFollowers; ++i) {
    tickets.push_back(broker.submit(config));
    EXPECT_EQ(tickets.back().admission, RequestStatus::Coalesced) << i;
  }
  gate.open();

  std::shared_ptr<const Sweep> shared;
  for (auto& t : tickets) {
    const SweepResponse resp = t.result.get();
    EXPECT_EQ(resp.status, RequestStatus::Simulated);
    ASSERT_NE(resp.sweep, nullptr);
    if (!shared) shared = resp.sweep;
    EXPECT_EQ(resp.sweep, shared);
  }
  EXPECT_EQ(simulations.load(), 1);

  const BrokerCounters c = broker.counters();
  EXPECT_EQ(c.requests, 1 + kFollowers);
  EXPECT_EQ(c.cold_misses, 1);
  EXPECT_EQ(c.coalesced, kFollowers);
  EXPECT_EQ(c.enqueued, 1);
  EXPECT_EQ(c.simulated, 1);
  EXPECT_EQ(c.inflight, 0);
  EXPECT_EQ(invariant_lhs(c), invariant_rhs(c));
}

TEST(Broker, ConcurrentSyncRequestsSimulateOnce) {
  SweepBroker broker({"", false, 0});
  std::atomic<int> simulations{0};
  broker.set_pre_run_hook([&](const std::string&) {
    simulations.fetch_add(1);
    // Hold the leader long enough that the other threads provably arrive
    // while it is in flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });

  const SweepConfig config = small_config();
  std::mutex mu;
  std::vector<SweepResponse> responses;
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i)
    threads.emplace_back([&] {
      SweepResponse r = broker.request(config);
      std::lock_guard<std::mutex> lock(mu);
      responses.push_back(std::move(r));
    });
  for (auto& t : threads) t.join();

  EXPECT_EQ(simulations.load(), 1);
  ASSERT_EQ(responses.size(), 8u);
  for (const auto& r : responses) {
    ASSERT_NE(r.sweep, nullptr);
    EXPECT_EQ(r.sweep, responses.front().sweep);
    EXPECT_TRUE(r.status == RequestStatus::Simulated ||
                r.status == RequestStatus::Coalesced ||
                r.status == RequestStatus::WarmMemo)
        << request_status_name(r.status);
  }
  const BrokerCounters c = broker.counters();
  EXPECT_EQ(invariant_lhs(c), invariant_rhs(c));
}

TEST(Broker, PriorityOrdersTheColdQueue) {
  // One worker, parked on a blocker; three distinct cold configs queued at
  // priorities 0/2/1 must run 2, 1, 0.
  SweepBroker broker({"", false, 1});
  Gate gate;
  std::mutex order_mu;
  std::vector<std::string> order;
  broker.set_pre_run_hook([&](const std::string& fp) {
    {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(fp);
    }
    gate.wait();
  });

  const SweepConfig blocker = small_config(1);
  const SweepConfig lo = small_config(2);
  const SweepConfig hi = small_config(3);
  const SweepConfig mid = small_config(4);

  const Ticket t0 = broker.submit(blocker);
  // Wait until the blocker is actually running so the rest truly queue.
  while (true) {
    std::lock_guard<std::mutex> lock(order_mu);
    if (!order.empty()) break;
  }
  const Ticket t_lo = broker.submit(lo, 0);
  const Ticket t_hi = broker.submit(hi, 2);
  const Ticket t_mid = broker.submit(mid, 1);
  gate.open();
  t0.result.wait();
  t_lo.result.wait();
  t_hi.result.wait();
  t_mid.result.wait();

  std::lock_guard<std::mutex> lock(order_mu);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], harness::fingerprint(blocker));
  EXPECT_EQ(order[1], harness::fingerprint(hi));
  EXPECT_EQ(order[2], harness::fingerprint(mid));
  EXPECT_EQ(order[3], harness::fingerprint(lo));
}

TEST(Broker, DeadlineExpiresWhileQueued) {
  SweepBroker broker({"", false, 1});
  Gate gate;
  std::atomic<int> started{0};
  broker.set_pre_run_hook([&](const std::string&) {
    started.fetch_add(1);
    gate.wait();
  });

  const Ticket blocker = broker.submit(small_config(1));
  while (started.load() == 0) std::this_thread::yield();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  const Ticket doomed = broker.submit(small_config(2), 0, deadline);
  EXPECT_EQ(doomed.admission, RequestStatus::Queued);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.open();

  const SweepResponse resp = doomed.result.get();
  EXPECT_EQ(resp.status, RequestStatus::Expired);
  EXPECT_EQ(resp.sweep, nullptr);
  blocker.result.wait();
  EXPECT_EQ(started.load(), 1);  // the doomed request never simulated

  const BrokerCounters c = broker.counters();
  EXPECT_EQ(c.expired, 1);
  EXPECT_EQ(c.simulated, 1);
  EXPECT_EQ(invariant_lhs(c), invariant_rhs(c));
}

TEST(Broker, FollowerWithoutDeadlineUnboundsTheLeader) {
  SweepBroker broker({"", false, 1});
  Gate gate;
  std::atomic<int> started{0};
  broker.set_pre_run_hook([&](const std::string&) {
    started.fetch_add(1);
    gate.wait();
  });

  const Ticket blocker = broker.submit(small_config(1));
  while (started.load() == 0) std::this_thread::yield();

  const auto tight =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  const Ticket leader = broker.submit(small_config(2), 0, tight);
  // A follower that is happy to wait forever relaxes the deadline: the
  // merged deadline is the max over attached requests, and "none" wins.
  const Ticket follower = broker.submit(small_config(2));
  EXPECT_EQ(follower.admission, RequestStatus::Coalesced);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.open();

  EXPECT_EQ(leader.result.get().status, RequestStatus::Simulated);
  EXPECT_EQ(follower.result.get().status, RequestStatus::Simulated);
  blocker.result.wait();
}

TEST(Broker, DrainRejectsNewWorkAndWaitsForInFlight) {
  SweepBroker broker({"", false, 2});
  Gate gate;
  std::atomic<int> started{0};
  broker.set_pre_run_hook([&](const std::string&) {
    started.fetch_add(1);
    gate.wait();
  });
  const Ticket inflight = broker.submit(small_config(1));
  while (started.load() == 0) std::this_thread::yield();

  std::atomic<bool> drained{false};
  std::thread drainer([&] {
    broker.drain();
    drained.store(true);
  });
  // Drain must not complete while the leader is parked.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(drained.load());

  const Ticket late = broker.submit(small_config(2));
  EXPECT_EQ(late.admission, RequestStatus::Rejected);
  EXPECT_EQ(late.result.get().status, RequestStatus::Rejected);
  EXPECT_EQ(broker.request(small_config(3)).status,
            RequestStatus::Rejected);

  gate.open();
  drainer.join();
  EXPECT_TRUE(drained.load());
  // The in-flight leader completed rather than being cancelled.
  EXPECT_EQ(inflight.result.get().status, RequestStatus::Simulated);

  const BrokerCounters c = broker.counters();
  EXPECT_EQ(c.rejected, 2);
  EXPECT_EQ(c.inflight, 0);
  EXPECT_EQ(invariant_lhs(c), invariant_rhs(c));
}

TEST(Broker, BitIdenticalToDirectRunSweepAcrossJobsAndShards) {
  // The acceptance criterion of the refactor: broker-resolved sweeps match
  // a direct run_sweep byte-for-byte at every jobs x shards combination,
  // through both the sync (CLI) and async (server) paths.
  SweepConfig base = small_config();
  base.stencils = {dsl::Stencil::star(1), dsl::Stencil::cube(1)};
  base.variants = {codegen::Variant::Array, codegen::Variant::BricksCodegen};
  const std::string baseline = dump(harness::run_sweep(base));

  for (const int jobs : {1, 2}) {
    for (const int shards : {0, 2}) {
      SweepConfig config = base;
      config.jobs = jobs;
      config.shards = shards;
      // jobs/shards are presentation knobs: identical fingerprint, so a
      // shared broker would serve the first result warm.  Fresh brokers
      // force every combination to actually simulate.
      SweepBroker sync_broker({"", false, 1});
      const SweepResponse sync = sync_broker.request(config);
      ASSERT_EQ(sync.status, RequestStatus::Simulated);
      EXPECT_EQ(dump(*sync.sweep), baseline)
          << "sync jobs=" << jobs << " shards=" << shards;

      SweepBroker async_broker({"", false, 1});
      const SweepResponse via_pool =
          async_broker.submit(config).result.get();
      ASSERT_EQ(via_pool.status, RequestStatus::Simulated);
      EXPECT_EQ(dump(*via_pool.sweep), baseline)
          << "async jobs=" << jobs << " shards=" << shards;
    }
  }
}

TEST(Broker, ColdMissPersistsAndSecondBrokerReplaysFromDisk) {
  const fs::path dir = fresh_dir("broker_disk");
  const SweepConfig config = small_config();
  {
    SweepBroker broker({dir.string(), false, 0});
    ASSERT_EQ(broker.request(config).status, RequestStatus::Simulated);
  }
  SweepBroker broker({dir.string(), false, 0});
  const SweepResponse warm = broker.request(config);
  EXPECT_EQ(warm.status, RequestStatus::WarmDisk);
  ASSERT_NE(warm.sweep, nullptr);
  // And the disk hit memoizes: the next request is warm in process.
  EXPECT_EQ(broker.request(config).status, RequestStatus::WarmMemo);

  const BrokerCounters c = broker.counters();
  EXPECT_EQ(c.warm_disk, 1);
  EXPECT_EQ(c.simulated, 0);
  EXPECT_EQ(invariant_lhs(c), invariant_rhs(c));
}

TEST(Broker, DegradedSweepIsMemoizedButNeverPersisted) {
  const fs::path dir = fresh_dir("broker_degraded");
  const SweepConfig config = small_config();
  SweepBroker broker({dir.string(), false, 0});
  {
    fault::ScopedPlan plan("launch@1");
    const SweepResponse resp = broker.request(config);
    ASSERT_EQ(resp.status, RequestStatus::Simulated);
    ASSERT_NE(resp.sweep, nullptr);
    ASSERT_FALSE(resp.sweep->failures.empty());
  }
  // Served warm in-process (matching the old provider memo semantics)...
  EXPECT_EQ(broker.request(config).status, RequestStatus::WarmMemo);
  // ...but a fresh broker gets no full cache entry: degraded sweeps are
  // never persisted, so the healthy rerun below really simulates.
  SweepBroker fresh({dir.string(), false, 0});
  const SweepResponse healthy = fresh.request(config);
  EXPECT_EQ(healthy.status, RequestStatus::Simulated);
  EXPECT_TRUE(healthy.sweep->failures.empty());
}

TEST(Broker, MemoBudgetEvictsToLruAndFallsBackToDisk) {
  // Learn the serialized cost of two distinct sweeps with an unbounded
  // broker, then rerun with a budget that fits either alone but not both:
  // the LRU tail is evicted, the byte gauge never exceeds the budget, and
  // an evicted entry comes back bit-identical from the disk cache.
  const fs::path dir = fresh_dir("broker_evict");
  const SweepConfig a = small_config(1);
  const SweepConfig b = small_config(2);
  std::string dump_a;
  std::size_t total_bytes = 0;
  {
    SweepBroker::Options o;
    o.cache_dir = dir.string();
    SweepBroker unbounded(o);
    const SweepResponse ra = unbounded.request(a);
    ASSERT_EQ(ra.status, RequestStatus::Simulated);
    dump_a = dump(*ra.sweep);
    ASSERT_EQ(unbounded.request(b).status, RequestStatus::Simulated);
    const BrokerCounters c = unbounded.counters();
    ASSERT_EQ(c.memo_entries, 2);
    ASSERT_EQ(c.memo_evictions, 0);
    total_bytes = static_cast<std::size_t>(c.memo_bytes);
    ASSERT_GT(total_bytes, 2u);
  }

  SweepBroker::Options o;
  o.cache_dir = dir.string();
  o.memo_bytes = total_bytes - 1;  // either entry fits; both cannot
  SweepBroker broker(o);
  EXPECT_EQ(broker.request(a).status, RequestStatus::WarmDisk);
  EXPECT_EQ(broker.request(b).status, RequestStatus::WarmDisk);  // evicts a
  {
    const BrokerCounters c = broker.counters();
    EXPECT_EQ(c.memo_evictions, 1);
    EXPECT_EQ(c.memo_entries, 1);
    EXPECT_LE(static_cast<std::size_t>(c.memo_bytes), o.memo_bytes);
  }
  // The evicted entry is not lost: it replays from disk, bit-identical,
  // and its return is counted as a readmission (which evicts b in turn).
  const SweepResponse back = broker.request(a);
  EXPECT_EQ(back.status, RequestStatus::WarmDisk);
  ASSERT_NE(back.sweep, nullptr);
  EXPECT_EQ(dump(*back.sweep), dump_a);
  const BrokerCounters c = broker.counters();
  EXPECT_EQ(c.memo_readmissions, 1);
  EXPECT_EQ(c.memo_evictions, 2);
  EXPECT_LE(static_cast<std::size_t>(c.memo_bytes), o.memo_bytes);
  EXPECT_EQ(invariant_lhs(c), invariant_rhs(c));
}

TEST(Broker, WarmHitsKeepHotEntriesResidentUnderPressure) {
  // LRU, not FIFO: touching the older entry before inserting a third must
  // evict the untouched one.
  const fs::path dir = fresh_dir("broker_lru");
  const SweepConfig a = small_config(1);
  const SweepConfig b = small_config(2);
  const SweepConfig c3 = small_config(3);
  std::size_t budget = 0;
  {
    SweepBroker::Options o;
    o.cache_dir = dir.string();
    SweepBroker unbounded(o);
    ASSERT_EQ(unbounded.request(a).status, RequestStatus::Simulated);
    const auto bytes_a =
        static_cast<std::size_t>(unbounded.counters().memo_bytes);
    ASSERT_EQ(unbounded.request(b).status, RequestStatus::Simulated);
    const auto bytes_ab =
        static_cast<std::size_t>(unbounded.counters().memo_bytes);
    ASSERT_EQ(unbounded.request(c3).status, RequestStatus::Simulated);
    const auto bytes_abc =
        static_cast<std::size_t>(unbounded.counters().memo_bytes);
    // Big enough for {a,b} and for {a,c3}, too small for all three.
    budget = std::max(bytes_ab, bytes_a + (bytes_abc - bytes_ab));
    ASSERT_LT(budget, bytes_abc);
  }
  SweepBroker::Options o;
  o.cache_dir = dir.string();
  o.memo_bytes = budget;
  SweepBroker broker(o);
  ASSERT_EQ(broker.request(a).status, RequestStatus::WarmDisk);
  ASSERT_EQ(broker.request(b).status, RequestStatus::WarmDisk);
  ASSERT_EQ(broker.request(a).status, RequestStatus::WarmMemo);  // touch a
  ASSERT_EQ(broker.request(c3).status, RequestStatus::WarmDisk);  // evicts b
  EXPECT_EQ(broker.request(a).status, RequestStatus::WarmMemo);
  EXPECT_EQ(broker.request(b).status, RequestStatus::WarmDisk);  // was evicted
}

TEST(Broker, AdmissionControlShedsNewLeadersPastTheQueueBound) {
  SweepBroker::Options o;
  o.workers = 1;
  o.max_queue = 1;
  SweepBroker broker(o);
  Gate gate;
  std::atomic<int> started{0};
  broker.set_pre_run_hook([&](const std::string&) {
    started.fetch_add(1);
    gate.wait();
  });

  // Leader 1 occupies the only worker; leader 2 fills the queue.
  const Ticket running = broker.submit(small_config(1));
  while (started.load() == 0) std::this_thread::yield();
  const Ticket queued = broker.submit(small_config(2));
  EXPECT_EQ(queued.admission, RequestStatus::Queued);

  // A THIRD distinct cold is past the bound: shed at the door, terminal
  // immediately, with a positive retry hint.
  const Ticket shed = broker.submit(small_config(3));
  EXPECT_EQ(shed.admission, RequestStatus::Overloaded);
  ASSERT_EQ(shed.result.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const SweepResponse resp = shed.result.get();
  EXPECT_EQ(resp.status, RequestStatus::Overloaded);
  EXPECT_EQ(resp.sweep, nullptr);
  EXPECT_GT(resp.retry_after_ms, 0);

  // Warm hits and coalesced followers are never shed.
  const Ticket follower = broker.submit(small_config(2));
  EXPECT_EQ(follower.admission, RequestStatus::Coalesced);

  gate.open();
  running.result.wait();
  queued.result.wait();
  follower.result.wait();

  // Capacity is back: the shed config is admitted on retry.
  const SweepResponse retried = broker.submit(small_config(3)).result.get();
  EXPECT_EQ(retried.status, RequestStatus::Simulated);

  const BrokerCounters c = broker.counters();
  EXPECT_EQ(c.overloaded, 1);
  EXPECT_EQ(c.queued, 0);
  EXPECT_GT(c.p50_ms, 0.0);
  EXPECT_GE(c.p99_ms, c.p50_ms);
  EXPECT_EQ(invariant_lhs(c), invariant_rhs(c));
}

TEST(Broker, MixedStormCountersAddUp) {
  // A miniature of the CI load test, in process: several threads hammer a
  // hot config with occasional colds; afterwards the counter invariant
  // holds exactly and nothing is left in flight.
  const fs::path dir = fresh_dir("broker_storm");
  SweepBroker broker({dir.string(), false, 4});
  constexpr int kThreads = 6;
  constexpr int kPerThread = 40;
  std::atomic<long> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int g = t * kPerThread + i;
        const SweepConfig config = small_config(g % 7 == 0 ? 2 + g % 3 : 1);
        const SweepResponse resp =
            broker.submit(config, g % 3).result.get();
        if (resp.sweep != nullptr) ok.fetch_add(1);
      }
    });
  for (auto& th : threads) th.join();

  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  const BrokerCounters c = broker.counters();
  EXPECT_EQ(c.requests, kThreads * kPerThread);
  EXPECT_EQ(invariant_lhs(c), invariant_rhs(c));
  EXPECT_EQ(c.cold_misses, c.warm_disk + c.simulated + c.expired + c.failed);
  EXPECT_EQ(c.simulated, 4);  // radii 1,2,3,4: one leader each
  EXPECT_EQ(c.expired, 0);
  EXPECT_EQ(c.failed, 0);
  EXPECT_EQ(c.rejected, 0);
  EXPECT_EQ(c.inflight, 0);
}

}  // namespace
}  // namespace bricksim::serve
