// Cross-process sweep leases (harness/lease.h): claim protocol, liveness
// via heartbeats, stale-lease takeover, the lease.steal fault site, and
// the broker-level guarantee the whole module exists for: two brokers on
// one cache directory simulate a cold sweep exactly once, and a peer
// adopts a SIGKILLed owner's stale lease instead of waiting forever.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "common/fault.h"
#include "common/json.h"
#include "harness/harness.h"
#include "harness/lease.h"
#include "harness/sweepcache.h"
#include "serve/broker.h"

namespace bricksim::harness {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

SweepConfig small_config(int stencil_radius = 1) {
  SweepConfig config;
  config.domain = {64, 64, 64};
  config.platforms = {model::paper_platforms().front()};
  config.stencils = {dsl::Stencil::star(stencil_radius)};
  config.variants = {codegen::Variant::Array};
  config.jobs = 1;
  return config;
}

/// A lease record whose owner will never heartbeat again -- what a
/// SIGKILLed daemon leaves on disk.
void plant_dead_lease(const std::string& dir, const std::string& fp,
                      long ttl_ms, long heartbeat_ms_ago) {
  json::Value v = json::Value::object();
  v["schema"] = kLeaseSchema;
  v["owner"] = "deadhost:999999:42";
  v["fingerprint"] = fp;
  v["ttl_ms"] = ttl_ms;
  v["heartbeat_ms"] =
      static_cast<long>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count()) -
      heartbeat_ms_ago;
  std::ofstream out(lease_path(dir, fp), std::ios::binary | std::ios::trunc);
  out << v.dump() << "\n";
}

TEST(Lease, AcquireStampReleaseRoundTrip) {
  const fs::path dir = fresh_dir("lease_basic");
  SweepLease lease(dir.string(), "abcd1234", 1000);
  EXPECT_EQ(lease.try_acquire(), SweepLease::Outcome::Acquired);
  EXPECT_TRUE(lease.owned());
  EXPECT_EQ(lease.path(), lease_path(dir.string(), "abcd1234"));

  const auto info = read_lease(lease.path());
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->owner, lease.owner_id());
  EXPECT_EQ(info->fingerprint, "abcd1234");
  EXPECT_EQ(info->ttl_ms, 1000);
  EXPECT_FALSE(info->stale);

  lease.release();
  EXPECT_FALSE(lease.owned());
  EXPECT_FALSE(fs::exists(lease.path()));
  lease.release();  // idempotent
}

TEST(Lease, LivePeerHoldsOutContenders) {
  const fs::path dir = fresh_dir("lease_held");
  SweepLease owner(dir.string(), "fp1", 60000);
  ASSERT_EQ(owner.try_acquire(), SweepLease::Outcome::Acquired);

  SweepLease contender(dir.string(), "fp1", 60000);
  EXPECT_EQ(contender.try_acquire(), SweepLease::Outcome::Held);
  EXPECT_FALSE(contender.owned());
  // The loser did not clobber the holder's record.
  EXPECT_EQ(read_lease(owner.path())->owner, owner.owner_id());

  // A DIFFERENT fingerprint is an unrelated lease.
  SweepLease other(dir.string(), "fp2", 60000);
  EXPECT_EQ(other.try_acquire(), SweepLease::Outcome::Acquired);
}

TEST(Lease, HeartbeatKeepsALeaseFreshPastItsTtl) {
  const fs::path dir = fresh_dir("lease_beat");
  SweepLease owner(dir.string(), "fp1", 150);
  ASSERT_EQ(owner.try_acquire(), SweepLease::Outcome::Acquired);
  {
    LeaseHeartbeat hb(owner);
    // Far past the raw ttl, the heartbeat keeps the record fresh.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    SweepLease contender(dir.string(), "fp1", 150);
    EXPECT_EQ(contender.try_acquire(), SweepLease::Outcome::Held);
    EXPECT_FALSE(hb.ousted());
  }
  // Heartbeat gone (the owner "died"): the lease goes stale and is stolen.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  SweepLease thief(dir.string(), "fp1", 150);
  EXPECT_EQ(thief.try_acquire(), SweepLease::Outcome::Stolen);
  EXPECT_TRUE(thief.owned());
  // The old owner discovers the steal on its next heartbeat and stands
  // down without touching the thief's record.
  EXPECT_FALSE(owner.heartbeat());
  EXPECT_FALSE(owner.owned());
  owner.release();
  EXPECT_EQ(read_lease(thief.path())->owner, thief.owner_id());
}

TEST(Lease, StaleRecordFromASigkilledOwnerIsStolen) {
  const fs::path dir = fresh_dir("lease_stale");
  const std::string fp = "deadfp01";
  plant_dead_lease(dir.string(), fp, 100, 500);  // 5x past its ttl

  SweepLease thief(dir.string(), fp, 100);
  EXPECT_EQ(thief.try_acquire(), SweepLease::Outcome::Stolen);
  EXPECT_EQ(read_lease(thief.path())->owner, thief.owner_id());
}

TEST(Lease, UnreadableRecordIsClaimedLikeAStaleOne) {
  const fs::path dir = fresh_dir("lease_garbage");
  const std::string fp = "garbled1";
  {
    std::ofstream out(lease_path(dir.string(), fp));
    out << "not json at all";
  }
  SweepLease thief(dir.string(), fp, 1000);
  EXPECT_EQ(thief.try_acquire(), SweepLease::Outcome::Stolen);
}

TEST(Lease, FaultSiteForcesADeterministicSteal) {
  const fs::path dir = fresh_dir("lease_fault");
  SweepLease owner(dir.string(), "fp1", 60000);
  ASSERT_EQ(owner.try_acquire(), SweepLease::Outcome::Acquired);

  fault::ScopedPlan plan("lease.steal@1");
  SweepLease thief(dir.string(), "fp1", 60000);
  EXPECT_EQ(thief.try_acquire(), SweepLease::Outcome::Stolen);
  EXPECT_FALSE(owner.heartbeat());  // ousted, but its sweep would continue
}

TEST(Lease, TwoBrokersOneCacheDirSimulateAColdSweepOnce) {
  const fs::path dir = fresh_dir("lease_two_brokers");
  serve::SweepBroker::Options o;
  o.cache_dir = dir.string();
  o.workers = 1;
  o.lease_ttl_ms = 5000;
  serve::SweepBroker daemon_a(o);
  serve::SweepBroker daemon_b(o);
  std::atomic<int> simulations{0};
  const auto count = [&](const std::string&) { simulations.fetch_add(1); };
  daemon_a.set_pre_run_hook(count);
  daemon_b.set_pre_run_hook(count);

  const SweepConfig config = small_config();
  const serve::Ticket ta = daemon_a.submit(config);
  // Wait until daemon A's leader provably holds the lease (the pre-run
  // hook fires after acquisition) before the second daemon contends --
  // the deterministic half of the race; a fully simultaneous claim can
  // at worst duplicate one simulation, never corrupt (harness/lease.h).
  while (simulations.load() == 0) std::this_thread::yield();
  const serve::Ticket tb = daemon_b.submit(config);
  const serve::SweepResponse ra = ta.result.get();
  const serve::SweepResponse rb = tb.result.get();

  ASSERT_NE(ra.sweep, nullptr);
  ASSERT_NE(rb.sweep, nullptr);
  EXPECT_EQ(simulations.load(), 1);
  EXPECT_EQ(sweep_to_json(*ra.sweep).dump(), sweep_to_json(*rb.sweep).dump());
  // The follower either found the entry on disk outright or waited out
  // the leader's lease; the lease files themselves are gone.
  EXPECT_FALSE(fs::exists(lease_path(dir.string(), ra.fingerprint)));
  const auto ca = daemon_a.counters();
  const auto cb = daemon_b.counters();
  EXPECT_EQ(ca.simulated + cb.simulated, 1);
  EXPECT_EQ(ca.warm_disk + cb.warm_disk, 1);
}

TEST(Lease, BrokerStealsAStaleLeaseAndCompletesTheSweep) {
  // A daemon SIGKILLed mid-sweep leaves a lease that goes stale; the next
  // broker must expire it, adopt the fingerprint, and finish the job --
  // not wait forever, not duplicate corruption.
  const fs::path dir = fresh_dir("lease_takeover");
  const SweepConfig config = small_config();
  const std::string fp = fingerprint(config);
  plant_dead_lease(dir.string(), fp, 100, 1000);

  serve::SweepBroker::Options o;
  o.cache_dir = dir.string();
  o.workers = 1;
  o.lease_ttl_ms = 100;
  serve::SweepBroker broker(o);
  const serve::SweepResponse resp = broker.submit(config).result.get();
  EXPECT_EQ(resp.status, serve::RequestStatus::Simulated);
  ASSERT_NE(resp.sweep, nullptr);

  const auto c = broker.counters();
  EXPECT_EQ(c.lease_steals, 1);
  EXPECT_EQ(c.simulated, 1);
  // The stolen lease was released after the store; the cache entry is
  // there for the next daemon.
  EXPECT_FALSE(fs::exists(lease_path(dir.string(), fp)));
  serve::SweepBroker fresh(o);
  EXPECT_EQ(fresh.request(config).status, serve::RequestStatus::WarmDisk);
}

TEST(Lease, HeldLeaseMakesAPeerPollDiskInsteadOfSimulating) {
  // A live lease with no cache entry yet: the peer's leader must wait on
  // the owner (counted as a lease_wait), then serve the owner's result
  // from disk the moment it lands.
  const fs::path dir = fresh_dir("lease_poll");
  const SweepConfig config = small_config();
  const std::string fp = fingerprint(config);

  SweepLease owner(dir.string(), fp, 60000);
  ASSERT_EQ(owner.try_acquire(), SweepLease::Outcome::Acquired);

  serve::SweepBroker::Options o;
  o.cache_dir = dir.string();
  o.workers = 1;
  o.lease_ttl_ms = 60000;
  serve::SweepBroker peer(o);
  std::atomic<int> simulations{0};
  peer.set_pre_run_hook([&](const std::string&) { simulations.fetch_add(1); });
  const serve::Ticket ticket = peer.submit(config);

  // While the owner holds the lease, the peer must not simulate.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(simulations.load(), 0);
  EXPECT_EQ(ticket.result.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout);

  // The "owner" (another process in production) completes the sweep,
  // stores it, and releases -- the peer unblocks with the disk entry.
  {
    serve::SweepBroker::Options own;
    own.cache_dir = dir.string();
    serve::SweepBroker owner_broker(own);
    ASSERT_EQ(owner_broker.request(config).status,
              serve::RequestStatus::Simulated);
  }
  owner.release();
  const serve::SweepResponse resp = ticket.result.get();
  EXPECT_EQ(resp.status, serve::RequestStatus::WarmDisk);
  EXPECT_EQ(simulations.load(), 0);
  EXPECT_GE(peer.counters().lease_waits, 1);
}

}  // namespace
}  // namespace bricksim::harness
