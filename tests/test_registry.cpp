// The experiment registry and the bricksim driver: registration
// invariants, emitter/shim equivalence, and the artifact cache replaying
// a warm run byte-identically without executing any emitter.
#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/error.h"
#include "common/json.h"
#include "common/shutdown.h"
#include "harness/registry.h"
#include "harness/sweepcache.h"

namespace bricksim {
namespace {

TEST(Registry, SeventeenUniquelyNamedExperiments) {
  const auto& reg = harness::experiment_registry();
  EXPECT_EQ(reg.size(), 17u);
  std::set<std::string> names, binaries;
  for (const auto& exp : reg) {
    EXPECT_TRUE(names.insert(exp.name).second) << exp.name;
    EXPECT_NE(exp.emit, nullptr) << exp.name;
    EXPECT_GT(exp.default_n, 0) << exp.name;
    EXPECT_EQ(exp.default_n % 64, 0) << exp.name;
    if (!exp.legacy_binary.empty())
      EXPECT_TRUE(binaries.insert(exp.legacy_binary).second)
          << exp.legacy_binary;
  }
  EXPECT_EQ(binaries.size(), 15u);  // every legacy bench except components
}

TEST(Registry, FindExperiment) {
  ASSERT_NE(harness::find_experiment("fig3"), nullptr);
  EXPECT_EQ(harness::find_experiment("fig3")->legacy_binary,
            "bench_fig3_roofline");
  EXPECT_EQ(harness::find_experiment("nope"), nullptr);
}

TEST(Registry, StaticEmitterMatchesMakeTable) {
  // table2 runs no sweep: the emitter must be exactly the legacy stdout.
  harness::SweepProvider provider("");
  std::ostringstream os;
  harness::ExperimentContext ctx(harness::SweepConfig{}, &provider, &os);
  harness::find_experiment("table2")->emit(ctx);

  std::ostringstream expect;
  expect << "Table 2: Stencils used for performance portability "
            "evaluation.\n\n";
  harness::make_table2().print(expect);
  EXPECT_EQ(os.str(), expect.str());
  ASSERT_EQ(ctx.tables().size(), 1u);
  EXPECT_EQ(ctx.tables()[0].first, "table2");
  EXPECT_EQ(ctx.tables()[0].second, harness::make_table2());
}

TEST(Registry, CsvFlagReachesEmittedTables) {
  harness::SweepConfig config;
  config.csv = true;
  harness::SweepProvider provider("");
  std::ostringstream os;
  harness::ExperimentContext ctx(config, &provider, &os);
  harness::find_experiment("table1")->emit(ctx);
  EXPECT_NE(os.str().find("Platform,Model,Lowering profile"),
            std::string::npos)
      << os.str();
}

int run_driver(const std::vector<std::string>& args) {
  std::vector<const char*> argv{"bricksim"};
  for (const auto& a : args) argv.push_back(a.c_str());
  return harness::driver_main(static_cast<int>(argv.size()), argv.data());
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Driver, ColdThenWarmReplaysFromArtifactCache) {
  const std::filesystem::path root =
      std::filesystem::path(testing::TempDir()) / "bricksim_driver_test";
  std::filesystem::remove_all(root);
  const std::string cache = (root / "cache").string();

  // Cheap but sweep-bearing selection: one static table plus the CPU sweep
  // at a small domain.
  const std::vector<std::string> sel = {"run",     "table2",
                                        "cpu_crossplatform",
                                        "--n",     "64",
                                        "--out",   (root / "cold").string(),
                                        "--cache-dir", cache};
  testing::internal::CaptureStdout();
  ASSERT_EQ(run_driver(sel), 0);
  const std::string cold_stdout = testing::internal::GetCapturedStdout();

  const json::Value cold_summary =
      json::Value::parse(slurp(root / "cold" / "run_summary.json"));
  EXPECT_EQ(cold_summary.at("cache").at("experiments_emitted").as_long(), 2);
  EXPECT_EQ(cold_summary.at("cache").at("artifact_hits").as_long(), 0);
  EXPECT_EQ(cold_summary.at("cache").at("sweeps_simulated").as_long(), 1);

  std::vector<std::string> warm_sel = sel;
  warm_sel[6] = (root / "warm").string();
  testing::internal::CaptureStdout();
  ASSERT_EQ(run_driver(warm_sel), 0);
  const std::string warm_stdout = testing::internal::GetCapturedStdout();

  EXPECT_EQ(warm_stdout, cold_stdout);
  const json::Value warm_summary =
      json::Value::parse(slurp(root / "warm" / "run_summary.json"));
  EXPECT_EQ(warm_summary.at("cache").at("experiments_emitted").as_long(), 0);
  EXPECT_EQ(warm_summary.at("cache").at("artifact_hits").as_long(), 2);
  EXPECT_EQ(warm_summary.at("cache").at("sweeps_simulated").as_long(), 0);

  // Per-experiment artifacts are byte-identical too.
  for (const char* name : {"table2", "cpu_crossplatform"}) {
    EXPECT_EQ(slurp(root / "warm" / name / "output.txt"),
              slurp(root / "cold" / name / "output.txt"))
        << name;
    EXPECT_EQ(slurp(root / "warm" / name / "tables.json"),
              slurp(root / "cold" / name / "tables.json"))
        << name;
  }
  // output.txt carries the exact stdout of the run.
  EXPECT_EQ(slurp(root / "cold" / "table2" / "output.txt") +
                slurp(root / "cold" / "cpu_crossplatform" / "output.txt"),
            cold_stdout);
  std::filesystem::remove_all(root);
}

TEST(Driver, NoCacheDisablesPersistence) {
  const std::filesystem::path root =
      std::filesystem::path(testing::TempDir()) / "bricksim_nocache_test";
  std::filesystem::remove_all(root);
  testing::internal::CaptureStdout();
  ASSERT_EQ(run_driver({"run", "table1", "--out", (root / "out").string(),
                        "--no-cache"}),
            0);
  testing::internal::GetCapturedStdout();
  const json::Value summary =
      json::Value::parse(slurp(root / "out" / "run_summary.json"));
  EXPECT_EQ(summary.at("cache_dir").as_string(), "");
  EXPECT_EQ(summary.at("cache").at("experiments_emitted").as_long(), 1);
  std::filesystem::remove_all(root);
}

TEST(Driver, RejectsUnknownExperimentAndCommand) {
  testing::internal::CaptureStderr();
  EXPECT_EQ(run_driver({"frobnicate"}), 2);
  testing::internal::GetCapturedStderr();
  EXPECT_THROW(run_driver({"run", "nope", "--no-cache"}), Error);
}

// Nonsense flag values must be a usage error (exit 2) with a message
// naming the flag -- never a silent clamp (the old get_long path accepted
// --jobs=0 and --jobs=-1 and quietly ran serial) and never exit 1.
TEST(Driver, RejectsNonsenseFlagValuesWithExitTwo) {
  const std::vector<std::vector<std::string>> bad = {
      {"run", "table2", "--no-cache", "--jobs=0"},
      {"run", "table2", "--no-cache", "--jobs=-1"},
      {"run", "table2", "--no-cache", "--shards=0"},
      {"run", "table2", "--no-cache", "--jobs=abc"},
      {"run", "table2", "--no-cache", "--frobnicate=1"},
  };
  const std::vector<std::string> needle = {"--jobs", "--jobs", "--shards",
                                           "--jobs", "frobnicate"};
  for (std::size_t n = 0; n < bad.size(); ++n) {
    testing::internal::CaptureStderr();
    EXPECT_EQ(run_driver(bad[n]), 2) << "case " << n;
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find(needle[n]), std::string::npos) << err;
  }
}

TEST(Driver, ListNamesEveryExperiment) {
  testing::internal::CaptureStdout();
  ASSERT_EQ(run_driver({"list"}), 0);
  const std::string out = testing::internal::GetCapturedStdout();
  for (const auto& exp : harness::experiment_registry())
    EXPECT_NE(out.find(exp.name), std::string::npos) << exp.name;
}

TEST(Driver, ListJsonIsMachineReadableAndComplete) {
  testing::internal::CaptureStdout();
  ASSERT_EQ(run_driver({"list", "--json"}), 0);
  const json::Value listing =
      json::Value::parse(testing::internal::GetCapturedStdout());
  const auto& reg = harness::experiment_registry();
  ASSERT_TRUE(listing.is_array());
  ASSERT_EQ(listing.size(), reg.size());
  for (std::size_t i = 0; i < reg.size(); ++i) {
    EXPECT_EQ(listing[i].at("name").as_string(), reg[i].name);
    EXPECT_EQ(listing[i].at("sweep").as_string(),
              harness::sweep_kind_name(reg[i].sweep));
    EXPECT_EQ(listing[i].at("default_n").as_long(), reg[i].default_n);
    EXPECT_EQ(listing[i].at("legacy_alias").as_string(), reg[i].legacy_binary);
    EXPECT_EQ(listing[i].at("title").as_string(), reg[i].title);
  }
}

TEST(Driver, ListRejectsUnknownArguments) {
  testing::internal::CaptureStdout();
  EXPECT_EQ(run_driver({"list", "--jsn"}), 2);
  testing::internal::GetCapturedStdout();
}

TEST(Driver, ShutdownMidRunExits128PlusSignoAndMarksTheSummary) {
  // A shutdown request arriving before the sweep claims any config makes
  // every worker skip: the provider reports the sweep interrupted, the
  // driver still writes its artifacts, and the exit code is 128 + signo.
  const std::filesystem::path root =
      std::filesystem::path(testing::TempDir()) / "bricksim_interrupt_test";
  std::filesystem::remove_all(root);
  request_shutdown(SIGTERM);
  testing::internal::CaptureStdout();
  const int rc = run_driver({"run", "cpu_crossplatform", "--n", "64",
                             "--out", (root / "out").string(),
                             "--cache-dir", (root / "cache").string()});
  testing::internal::GetCapturedStdout();
  reset_shutdown_for_tests();
  EXPECT_EQ(rc, 128 + SIGTERM);

  const json::Value summary =
      json::Value::parse(slurp(root / "out" / "run_summary.json"));
  EXPECT_TRUE(summary.at("interrupted").as_bool());
  EXPECT_EQ(summary.at("experiment_status").at("cpu_crossplatform")
                .as_string(),
            "interrupted");
  EXPECT_EQ(summary.at("cache").at("configs_simulated").as_long(), 0);
}

}  // namespace
}  // namespace bricksim
