// Tests for ghost-brick exchange: periodic fill and the two-subdomain halo
// exchange (the in-process proxy for BrickLib's MPI layer).
#include <gtest/gtest.h>

#include "brick/exchange.h"
#include "common/error.h"
#include "common/grid.h"
#include "common/rng.h"
#include "dsl/reference.h"
#include "dsl/stencil.h"

namespace bricksim::brick {
namespace {

TEST(PeriodicGhost, GhostShellWrapsInterior) {
  const Vec3 n{32, 8, 8};
  const BrickDecomp decomp(n, {16, 4, 4});
  BrickedArray a(decomp);
  HostGrid host(n, {0, 0, 0});
  SplitMix64 rng(3);
  host.fill_random(rng);
  a.from_host(host);
  fill_periodic_ghost(a);

  // Face, edge and corner samples, one brick deep.
  EXPECT_EQ(a.at(-1, 3, 3), a.at(31, 3, 3));
  EXPECT_EQ(a.at(32, 3, 3), a.at(0, 3, 3));
  EXPECT_EQ(a.at(5, -4, 2), a.at(5, 4, 2));
  EXPECT_EQ(a.at(5, 2, 11), a.at(5, 2, 3));
  EXPECT_EQ(a.at(-16, -4, -4), a.at(16, 4, 4));
  EXPECT_EQ(a.at(47, 11, 11), a.at(15, 3, 3));
}

TEST(PeriodicGhost, EnablesPeriodicStencilViaReference) {
  // Applying a stencil with a periodically-filled bricked array must equal
  // the reference applied to a host grid with hand-wrapped ghost.
  const Vec3 n{16, 8, 8};
  const BrickDecomp decomp(n, {16, 4, 4});
  BrickedArray a(decomp);
  HostGrid host(n, {2, 2, 2});
  SplitMix64 rng(5);
  // Fill interior only; wrap the host ghost by hand.
  for (int k = 0; k < n.k; ++k)
    for (int j = 0; j < n.j; ++j)
      for (int i = 0; i < n.i; ++i)
        host.at(i, j, k) = rng.next_double(-1, 1);
  for (int k = -2; k < n.k + 2; ++k)
    for (int j = -2; j < n.j + 2; ++j)
      for (int i = -2; i < n.i + 2; ++i) {
        if (i >= 0 && i < n.i && j >= 0 && j < n.j && k >= 0 && k < n.k)
          continue;
        host.at(i, j, k) = host.at(((i % n.i) + n.i) % n.i,
                                   ((j % n.j) + n.j) % n.j,
                                   ((k % n.k) + n.k) % n.k);
      }

  BrickedArray b(decomp);
  // Load interior only into the bricked array, then periodic-fill.
  HostGrid interior_only(n, {0, 0, 0});
  for (int k = 0; k < n.k; ++k)
    for (int j = 0; j < n.j; ++j)
      for (int i = 0; i < n.i; ++i)
        interior_only.at(i, j, k) = host.at(i, j, k);
  b.from_host(interior_only);
  fill_periodic_ghost(b);

  // The bricked ghost must now equal the hand-wrapped host ghost within
  // the stencil radius.
  for (int k = -2; k < n.k + 2; ++k)
    for (int j = -2; j < n.j + 2; ++j)
      for (int i = -2; i < n.i + 2; ++i)
        ASSERT_EQ(b.at(i, j, k), host.at(i, j, k))
            << i << "," << j << "," << k;
}

TEST(ExchangeGhost, FaceShellsSwapAlongEachAxis) {
  const Vec3 n{32, 8, 8};
  for (int axis = 0; axis < 3; ++axis) {
    const BrickDecomp decomp(n, {16, 4, 4});
    BrickedArray lo(decomp), hi(decomp);
    HostGrid hl(n, {0, 0, 0}), hh(n, {0, 0, 0});
    SplitMix64 rng(axis + 10);
    hl.fill_random(rng);
    hh.fill_random(rng);
    lo.from_host(hl);
    hi.from_host(hh);
    exchange_ghost(lo, hi, axis);

    const int extent = axis == 0 ? n.i : axis == 1 ? n.j : n.k;
    const int depth = axis == 0 ? 16 : 4;
    for (int a = 0; a < depth; ++a) {
      // Spot-check a cross-section point.
      auto get = [&](BrickedArray& arr, int va) {
        return axis == 0 ? arr.at(va, 3, 5)
               : axis == 1 ? arr.at(7, va, 5)
                           : arr.at(7, 3, va);
      };
      EXPECT_EQ(get(hi, a - depth), get(lo, extent - depth + a)) << axis;
      EXPECT_EQ(get(lo, extent + a), get(hi, a)) << axis;
    }
  }
}

TEST(ExchangeGhost, TwoSubdomainsReproduceTheUnion) {
  // Split a 64x8x8 domain into two 32x8x8 halves along i, exchange the
  // halo, apply the stencil per half (scalar reference over brick views),
  // and compare against the single-domain reference.
  const Vec3 whole{64, 8, 8};
  const Vec3 half{32, 8, 8};
  const int r = 2;
  const dsl::Stencil st = dsl::Stencil::star(r);

  HostGrid big(whole, {r, r, r});
  SplitMix64 rng(77);
  big.fill_random(rng);
  HostGrid expect(whole, {0, 0, 0});
  dsl::apply_reference(st, big, expect);

  const BrickDecomp decomp(half, {16, 4, 4});
  BrickedArray lo(decomp), hi(decomp);
  // Fill each half's interior + outer (j, k and outer-i) ghost from big;
  // the touching faces stay zero until exchanged.
  HostGrid hl(half, {r, r, r}), hh(half, {r, r, r});  // zero-initialised
  for (int k = -r; k < half.k + r; ++k)
    for (int j = -r; j < half.j + r; ++j)
      for (int i = -r; i < half.i + r; ++i) {
        // lo covers big [0, 32); hi covers big [32, 64).
        if (i < half.i)  // exclude the touching high ghost of lo
          hl.at(i, j, k) = big.at(i, j, k);
        if (i >= 0)  // exclude the touching low ghost of hi
          hh.at(i, j, k) = big.at(i + half.i, j, k);
      }
  lo.from_host(hl);
  hi.from_host(hh);
  exchange_ghost(lo, hi, /*axis=*/0);

  // Apply the stencil on each half by direct element access.
  auto apply = [&](BrickedArray& in, int i_base) {
    for (int k = 0; k < half.k; ++k)
      for (int j = 0; j < half.j; ++j)
        for (int i = 0; i < half.i; ++i) {
          double acc = 0;
          for (const auto& g : st.groups()) {
            double partial = 0;
            for (const Vec3& o : g.offsets)
              partial += in.at(i + o.i, j + o.j, k + o.k);
            acc += partial * g.value;
          }
          ASSERT_NEAR(acc, expect.at(i_base + i, j, k), 1e-12)
              << i_base + i << "," << j << "," << k;
        }
  };
  apply(lo, 0);
  apply(hi, half.i);
}

TEST(ExchangeGhost, RejectsMismatchedSubdomains) {
  const BrickDecomp a({32, 8, 8}, {16, 4, 4});
  const BrickDecomp b({32, 8, 16}, {16, 4, 4});
  BrickedArray lo(a), hi(b);
  EXPECT_THROW(exchange_ghost(lo, hi, 0), Error);
  BrickedArray same(a);
  EXPECT_THROW(exchange_ghost(lo, same, 7), Error);
}

}  // namespace
}  // namespace bricksim::brick
