// End-to-end integration tests: every paper stencil, lowered for every
// kernel variant on every (architecture, programming model) platform, must
// reproduce the scalar reference when executed functionally on the SIMT
// machine.  Gather-mode kernels follow the reference's floating-point
// association exactly; scatter-mode kernels reassociate and are compared
// with a tight relative tolerance.
#include <gtest/gtest.h>

#include "codegen/codegen.h"
#include "common/grid.h"
#include "common/rng.h"
#include "dsl/reference.h"
#include "dsl/stencil.h"
#include "model/launcher.h"
#include "model/progmodel.h"

namespace bricksim {
namespace {

using codegen::Variant;

struct Case {
  std::string stencil;
  Variant variant;
  std::string platform;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  std::string s = info.param.stencil + "_" +
                  codegen::variant_name(info.param.variant) + "_" +
                  info.param.platform;
  for (char& c : s)
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  return s;
}

dsl::Stencil stencil_by_name(const std::string& name) {
  for (const auto& s : dsl::Stencil::paper_catalog())
    if (s.name() == name) return s;
  throw Error("unknown stencil " + name);
}

model::Platform platform_by_label(const std::string& label) {
  for (const auto& p : model::paper_platforms())
    if (p.label() == label) return p;
  throw Error("unknown platform " + label);
}

class EndToEnd : public testing::TestWithParam<Case> {};

TEST_P(EndToEnd, MatchesScalarReference) {
  const Case& c = GetParam();
  const dsl::Stencil st = stencil_by_name(c.stencil);
  const model::Platform pf = platform_by_label(c.platform);

  // Domain: two blocks in every dimension so inter-brick adjacency and
  // tile-boundary reuse are both exercised.
  const Vec3 domain{2 * pf.gpu.simd_width, 8, 8};
  const Vec3 ghost{st.radius(), st.radius(), st.radius()};

  HostGrid in(domain, ghost), expect(domain, {0, 0, 0}),
      got(domain, {0, 0, 0});
  SplitMix64 rng(0xabcdef);
  in.fill_random(rng);
  dsl::apply_reference(st, in, expect);

  model::Launcher launcher(domain);
  const model::LaunchResult res =
      launcher.run_functional(st, c.variant, pf, in, got);

  const double err = dsl::max_rel_error(expect, got);
  if (res.used_scatter)
    EXPECT_LE(err, 1e-12) << "scatter kernels may reassociate";
  else
    EXPECT_EQ(err, 0.0) << "gather kernels must match bit for bit";

  // Sanity on the counters: at least compulsory traffic must have moved.
  EXPECT_GT(res.report.traffic.hbm_read_bytes, 0u);
  EXPECT_GT(res.report.traffic.hbm_write_bytes, 0u);
  EXPECT_GT(res.report.flops_executed, 0u);
  EXPECT_GT(res.report.seconds, 0.0);
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const auto& st : dsl::Stencil::paper_catalog())
    for (Variant v : {Variant::Array, Variant::ArrayCodegen,
                      Variant::BricksCodegen})
      for (const auto& pf : model::paper_platforms())
        cases.push_back({st.name(), v, pf.label()});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllStencilsVariantsPlatforms, EndToEnd,
                         testing::ValuesIn(all_cases()), case_name);

}  // namespace
}  // namespace bricksim
