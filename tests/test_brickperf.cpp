// Tests for analysis::brickperf, the static performance lint: each seeded
// hazard program must fire its exact PerfDiag family, and the full paper
// catalog's static estimates must stay within DriftTolerance of the
// simulator's measured counters (the contract behind `bricksim lint`).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/brickperf.h"
#include "arch/arch.h"
#include "dsl/stencil.h"
#include "harness/harness.h"
#include "harness/registry.h"
#include "model/launcher.h"
#include "model/progmodel.h"
#include "profiler/profiler.h"

namespace bricksim::analysis {
namespace {

// Match the A100's native SIMD width so the clean baseline has no
// vecwidth finding; its sector size is 32B, so a 256B warp access ideally
// costs 8 transactions.
constexpr int kW = 32;

ir::MemRef aref(int grid, int di, int dj = 0, int dk = 0,
                bool vectorized = true) {
  ir::MemRef m;
  m.grid = grid;
  m.space = ir::Space::Array;
  m.di = di;
  m.dj = dj;
  m.dk = dk;
  m.vectorized = vectorized;
  return m;
}

ir::MemRef spill_ref(int slot) {
  ir::MemRef m;
  m.space = ir::Space::Spill;
  m.slot = slot;
  return m;
}

/// A 2x2x2-block launch over (kW, 4, 4) tiles.  Ghost depth 4 and a
/// padded.i of 72 keep every interior offset and every block stride a
/// sector multiple: the transaction counts are exact and the zero-offset
/// refs are perfectly coalesced.
LaunchGeom geom() {
  LaunchGeom g;
  g.blocks = {2, 2, 2};
  g.tile = {kW, 4, 4};
  for (int i = 0; i < 2; ++i) {
    GridGeom gg;
    gg.layout = ir::Space::Array;
    gg.ghost = {4, 4, 4};
    gg.padded = {2 * kW + 8, 2 * 4 + 8, 2 * 4 + 8};
    g.grids.push_back(gg);
  }
  return g;
}

KernelAttrs attrs() {
  KernelAttrs a;
  a.domain = {2 * kW, 8, 8};  // covered exactly: no predication
  a.read_streams = 1;
  a.regs_used = 16;
  a.reg_budget = 64;
  return a;
}

/// Aligned load-store pair: the baseline every seeded hazard perturbs.
ir::Program clean_program() {
  ir::Program p(kW);
  p.store(p.load(aref(0, 0)), aref(1, 0));
  return p;
}

long count(const PerfReport& r, PerfCheck c) {
  return r.stats.by_check[static_cast<int>(c)];
}

TEST(Brickperf, CleanProgramHasNoDiagnostics) {
  const ir::Program p = clean_program();
  const PerfReport r = analyze(p, geom(), arch::make_a100(), attrs());
  EXPECT_TRUE(r.clean()) << r.to_string();
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.stats.programs, 1);
  EXPECT_EQ(r.stats.warnings, 0);
  // One 256B load + one 256B store, 8 sectors each, exact for all blocks.
  EXPECT_TRUE(r.est.exact_sectors);
  EXPECT_EQ(r.est.transactions_per_block, 16u);
  EXPECT_EQ(r.est.l1_bytes, 16.0 * 32 * 8);
  EXPECT_EQ(r.est.spill_slots, 0);
  EXPECT_GT(r.est.hbm_bytes, 0.0);
}

TEST(Brickperf, CoalesceMisalignedLoad) {
  ir::Program p(kW);
  p.store(p.load(aref(0, 1)), aref(1, 0));  // di=1: phase 8B off a sector
  const PerfReport r = analyze(p, geom(), arch::make_a100(), attrs());
  ASSERT_EQ(count(r, PerfCheck::Coalesce), 1) << r.to_string();
  const auto it = std::find_if(
      r.diags.begin(), r.diags.end(),
      [](const PerfDiag& d) { return d.check == PerfCheck::Coalesce; });
  ASSERT_NE(it, r.diags.end());
  EXPECT_EQ(it->severity, Severity::Warning);
  EXPECT_EQ(it->inst, 0);
  EXPECT_NE(it->message.find("misaligned by 8B"), std::string::npos)
      << it->message;
  EXPECT_NE(it->message.find("9 32B transactions per warp (ideal 8)"),
            std::string::npos)
      << it->message;
  // One extra sector on the load only.
  EXPECT_EQ(r.est.transactions_per_block, 17u);
  // Perf findings are warnings, never errors.
  EXPECT_TRUE(r.ok());
}

TEST(Brickperf, CoalesceNotesBypassLowering) {
  ir::Program p(kW);
  p.store(p.load(aref(0, 1)), aref(1, 0));
  KernelAttrs a = attrs();
  a.bypass_l2_unaligned_vloads = true;
  const PerfReport r = analyze(p, geom(), arch::make_mi250x_gcd(), a);
  const auto it = std::find_if(
      r.diags.begin(), r.diags.end(),
      [](const PerfDiag& d) { return d.check == PerfCheck::Coalesce; });
  ASSERT_NE(it, r.diags.end()) << r.to_string();
  EXPECT_NE(it->message.find("bypass the L2"), std::string::npos)
      << it->message;
}

TEST(Brickperf, SpillPressure) {
  ir::Program p(kW);
  const int v = p.load(aref(0, 0));
  p.store(v, spill_ref(0));
  p.store(p.load(spill_ref(0)), aref(1, 0));
  p.set_num_spill_slots(1);
  KernelAttrs a = attrs();
  a.regs_used = 100;
  a.reg_budget = 64;
  const PerfReport r = analyze(p, geom(), arch::make_a100(), a);
  ASSERT_EQ(count(r, PerfCheck::Spill), 1) << r.to_string();
  const auto it = std::find_if(
      r.diags.begin(), r.diags.end(),
      [](const PerfDiag& d) { return d.check == PerfCheck::Spill; });
  ASSERT_NE(it, r.diags.end());
  EXPECT_EQ(it->inst, -1);  // program-level
  EXPECT_NE(it->message.find("1 spill slot(s)"), std::string::npos)
      << it->message;
  EXPECT_NE(it->message.find("100/64"), std::string::npos) << it->message;
  EXPECT_EQ(r.est.spill_slots, 1);
  EXPECT_GT(r.est.spill_bytes, 0.0);
}

TEST(Brickperf, VecWidthMismatch) {
  ir::Program p(8);  // W=8 on a 32-lane machine: idle lanes
  p.store(p.load(aref(0, 0)), aref(1, 0));
  LaunchGeom g = geom();
  g.tile = {8, 4, 4};
  for (auto& gg : g.grids) gg.padded = {2 * 8 + 8, 16, 16};
  KernelAttrs a = attrs();
  a.domain = {16, 8, 8};
  const PerfReport r = analyze(p, g, arch::make_a100(), a);
  ASSERT_EQ(count(r, PerfCheck::VecWidth), 1) << r.to_string();
  const auto it = std::find_if(
      r.diags.begin(), r.diags.end(),
      [](const PerfDiag& d) { return d.check == PerfCheck::VecWidth; });
  ASSERT_NE(it, r.diags.end());
  EXPECT_NE(it->message.find("idle lanes"), std::string::npos)
      << it->message;
}

TEST(Brickperf, MissedReuseOnReload) {
  ir::Program p(kW);
  const int a = p.load(aref(0, 0));
  const int b = p.load(aref(0, 0));  // same affine address, no store between
  p.store(p.add(a, b), aref(1, 0));
  const PerfReport r = analyze(p, geom(), arch::make_a100(), attrs());
  ASSERT_EQ(count(r, PerfCheck::Reuse), 1) << r.to_string();
  const auto it = std::find_if(
      r.diags.begin(), r.diags.end(),
      [](const PerfDiag& d) { return d.check == PerfCheck::Reuse; });
  ASSERT_NE(it, r.diags.end());
  EXPECT_EQ(it->inst, 1);  // the reload, not the first load
  EXPECT_NE(it->message.find("missed register reuse"), std::string::npos)
      << it->message;
}

TEST(Brickperf, StoreToGridClearsReuseWindow) {
  ir::Program p(kW);
  const int a = p.load(aref(0, 0));
  p.store(a, aref(0, 0));  // store to grid 0 invalidates its live loads
  p.store(p.load(aref(0, 0)), aref(1, 0));
  const PerfReport r = analyze(p, geom(), arch::make_a100(), attrs());
  EXPECT_EQ(count(r, PerfCheck::Reuse), 0) << r.to_string();
}

TEST(Brickperf, PredicatedCornerBlocks) {
  const ir::Program p = clean_program();
  KernelAttrs a = attrs();
  a.domain = {60, 8, 8};  // tile.i=32 does not divide 60: corner block
  const PerfReport r = analyze(p, geom(), arch::make_a100(), a);
  ASSERT_EQ(count(r, PerfCheck::Predication), 1) << r.to_string();
  const auto it = std::find_if(
      r.diags.begin(), r.diags.end(),
      [](const PerfDiag& d) { return d.check == PerfCheck::Predication; });
  ASSERT_NE(it, r.diags.end());
  EXPECT_NE(it->message.find("predicated off"), std::string::npos)
      << it->message;
}

TEST(Brickperf, DiagnosticCapKeepsExactCounts) {
  ir::Program p(kW);
  int acc = p.load(aref(0, 0));
  for (int i = 0; i < kMaxDiagsPerCheck + 3; ++i)
    acc = p.add(acc, p.load(aref(0, 0)));  // every reload is a reuse miss
  p.store(acc, aref(1, 0));
  const PerfReport r = analyze(p, geom(), arch::make_a100(), attrs());
  EXPECT_EQ(count(r, PerfCheck::Reuse), kMaxDiagsPerCheck + 3);
  // Materialised: the cap plus one suppression summary.
  const long materialised = static_cast<long>(std::count_if(
      r.diags.begin(), r.diags.end(),
      [](const PerfDiag& d) { return d.check == PerfCheck::Reuse; }));
  EXPECT_EQ(materialised, kMaxDiagsPerCheck + 1);
  EXPECT_NE(r.to_string().find("suppressed"), std::string::npos);
}

TEST(Brickperf, CompareMeasuredDriftGate) {
  PerfEstimate est;
  est.l1_bytes = 1000;
  est.exact_sectors = true;
  est.hbm_bytes = 1000;
  est.spill_slots = 0;
  const DriftTolerance tol;

  Drift d = compare_measured(est, 1000, 1200, 0);
  EXPECT_EQ(d.l1_rel, 0.0);
  EXPECT_NEAR(d.hbm_rel, 200.0 / 1200.0, 1e-12);
  EXPECT_TRUE(d.within(tol));

  // HBM drift beyond the band.
  d = compare_measured(est, 1000, 2000, 0);
  EXPECT_FALSE(d.within(tol));

  // Exact sectors leave no L1 slack.
  d = compare_measured(est, 1001, 1000, 0);
  EXPECT_FALSE(d.within(tol));

  // Spill counts are exact: any mismatch fails.
  d = compare_measured(est, 1000, 1000, 2);
  EXPECT_FALSE(d.spill_match);
  EXPECT_FALSE(d.within(tol));
}

// The acceptance gate behind `bricksim lint`: over the full paper sweep,
// every configuration's static estimate agrees with the simulator's
// measured counters within the declared tolerance, with exact L1 sector
// counts and exact spill slots -- and zero false-positive errors.
TEST(Brickperf, PaperCatalogWithinDriftTolerance) {
  harness::SweepConfig base;
  base.domain = {64, 64, 64};
  base.check_mode = CheckMode::Off;
  const harness::SweepConfig main = harness::SweepProvider::main_config(base);
  const harness::Sweep sweep = harness::run_sweep(main);
  ASSERT_TRUE(sweep.failures.empty());

  model::Launcher launcher(main.domain);
  launcher.set_check_mode(CheckMode::Off);
  const DriftTolerance tol;
  int joined = 0;
  for (const auto& pf : main.platforms) {
    for (const auto& st : main.stencils) {
      for (const auto variant : main.variants) {
        const std::string vn = codegen::variant_name(variant);
        const profiler::Measurement* m =
            sweep.find(st.name(), vn, pf.label());
        ASSERT_NE(m, nullptr) << pf.label() << " " << st.name() << " " << vn;
        model::PreparedLaunch prep =
            launcher.prepare(st, variant, pf, main.cg_opts);
        KernelAttrs a;
        a.domain = main.domain;
        a.read_streams = prep.read_streams;
        a.bw_derate = pf.pm.bw_derate;
        a.streaming_stores = pf.pm.streaming_stores;
        a.bypass_l2_unaligned_vloads = pf.pm.bypass_l2_unaligned_vloads;
        a.regs_used = prep.regs_used;
        a.reg_budget =
            std::max(8, static_cast<int>(pf.gpu.regs_per_lane *
                                         pf.pm.reg_budget_fraction));
        const PerfReport rep = analyze(*prep.program, prep.geom, pf.gpu, a);
        EXPECT_TRUE(rep.ok()) << pf.label() << " " << st.name() << " " << vn;
        const Drift d = compare_measured(
            rep.est, static_cast<double>(m->l1_bytes),
            static_cast<double>(m->hbm_bytes), m->spill_slots);
        EXPECT_TRUE(d.within(tol))
            << pf.label() << " " << st.name() << " " << vn << ": L1 "
            << d.l1_rel * 100 << "% HBM " << d.hbm_rel * 100 << "% spills "
            << rep.est.spill_slots << "/" << m->spill_slots;
        EXPECT_TRUE(d.exact_sectors)
            << pf.label() << " " << st.name() << " " << vn;
        ++joined;
      }
    }
  }
  EXPECT_EQ(joined, static_cast<int>(main.platforms.size() *
                                     main.stencils.size() *
                                     main.variants.size()));
}

}  // namespace
}  // namespace bricksim::analysis
