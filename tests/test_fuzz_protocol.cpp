// Protocol hardening (serve/server.h): random/truncated/oversized frames
// thrown at a LIVE server socket must never crash or hang it; oversized
// prefixes get one clean error reply; partial writes and chunked reads
// through the framed transport reassemble exactly (the short-write
// regression); the connection limit refuses politely; the idle reaper
// closes silent connections.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "serve/server.h"

namespace bricksim::serve {
namespace {

namespace fs = std::filesystem;

/// An in-process hardened server: tight frame cap, I/O timeouts, and a
/// connection limit, so every abuse path in this file is reachable fast.
class HardenedServer {
 public:
  explicit HardenedServer(const std::string& name, long idle_timeout_ms = 0,
                          int max_conns = 0) {
    const fs::path root = fs::path(testing::TempDir()) / name;
    fs::remove_all(root);
    fs::create_directories(root);
    ServerOptions opts;
    opts.socket_path = (root / "s.sock").string();
    opts.cache_dir = (root / "cache").string();
    opts.workers = 2;
    opts.io_timeout_ms = 2000;
    opts.idle_timeout_ms = idle_timeout_ms;
    opts.max_conns = max_conns;
    opts.max_frame_bytes = 1u << 20;
    server_ = std::make_unique<Server>(opts);
    server_->start();
    thread_ = std::thread([this] { server_->run(); });
  }

  ~HardenedServer() {
    if (thread_.joinable()) {
      server_->stop();
      thread_.join();
    }
  }

  const std::string& socket() const { return server_->socket_path(); }
  json::Value healthz() {
    json::Value req = json::Value::object();
    req["op"] = "healthz";
    return client_call(socket(), req);
  }

 private:
  std::unique_ptr<Server> server_;
  std::thread thread_;
};

TEST(FuzzProtocol, RandomGarbageBytesNeverKillTheServer) {
  HardenedServer fx("fuzz_garbage");
  std::mt19937 rng(20260809);
  std::uniform_int_distribution<int> len_dist(1, 64);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int i = 0; i < 40; ++i) {
    const int fd = connect_client(fx.socket());
    std::string junk(static_cast<std::size_t>(len_dist(rng)), '\0');
    for (auto& c : junk) c = static_cast<char>(byte_dist(rng));
    (void)::send(fd, junk.data(), junk.size(), MSG_NOSIGNAL);
    // Half the time vanish immediately; half the time linger a moment.
    if (i % 2 == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ::close(fd);
  }
  // The server took 40 rounds of garbage and still answers.
  EXPECT_TRUE(fx.healthz().at("ok").as_bool());
  EXPECT_EQ(fx.healthz().at("status").as_string(), "serving");
}

TEST(FuzzProtocol, TruncatedFrameCostsTheConnectionNotTheServer) {
  HardenedServer fx("fuzz_truncated");
  const int fd = connect_client(fx.socket());
  const char prefix[4] = {0, 0, 0, 100};  // promises 100 bytes
  ASSERT_EQ(::send(fd, prefix, 4, MSG_NOSIGNAL), 4);
  ASSERT_EQ(::send(fd, "abc", 3, MSG_NOSIGNAL), 3);
  ::close(fd);  // ...but delivers 3 and vanishes
  EXPECT_TRUE(fx.healthz().at("ok").as_bool());
}

TEST(FuzzProtocol, OversizedPrefixGetsOneCleanErrorReplyThenClose) {
  HardenedServer fx("fuzz_oversized");
  const int fd = connect_client(fx.socket());
  // 2 MiB prefix against the fixture's 1 MiB cap.
  const std::uint32_t huge = 2u << 20;
  const char prefix[4] = {static_cast<char>(huge >> 24),
                          static_cast<char>(huge >> 16),
                          static_cast<char>(huge >> 8),
                          static_cast<char>(huge)};
  ASSERT_EQ(::send(fd, prefix, 4, MSG_NOSIGNAL), 4);
  const auto reply = read_frame(fd);
  ASSERT_TRUE(reply.has_value());
  const json::Value v = json::Value::parse(*reply);
  EXPECT_FALSE(v.at("ok").as_bool());
  EXPECT_NE(v.at("error").as_string().find("cap"), std::string::npos);
  // The stream is unrecoverable: the server closes after the diagnosis.
  EXPECT_EQ(read_frame(fd), std::nullopt);
  ::close(fd);
  EXPECT_TRUE(fx.healthz().at("ok").as_bool());
}

TEST(FuzzProtocol, InvalidJsonGetsAnErrorReplyAndKeepsTheConnection) {
  HardenedServer fx("fuzz_badjson");
  const int fd = connect_client(fx.socket());
  write_frame(fd, "{this is not json");
  const auto reply = read_frame(fd);
  ASSERT_TRUE(reply.has_value());
  EXPECT_FALSE(json::Value::parse(*reply).at("ok").as_bool());
  // Framing stayed intact, so the SAME connection still serves.
  json::Value req = json::Value::object();
  req["op"] = "healthz";
  write_frame(fd, req.dump());
  const auto next = read_frame(fd);
  ASSERT_TRUE(next.has_value());
  EXPECT_TRUE(json::Value::parse(*next).at("ok").as_bool());
  ::close(fd);
}

TEST(FuzzProtocol, ChunkedDeliveryReassemblesExactly) {
  // The short-read regression: a peer dribbling one frame across many
  // tiny writes (prefix split 2+2, payload in 7-byte chunks) must
  // reassemble byte-for-byte -- the old MSG_WAITALL prefix read and
  // non-looping recv could tear this.
  int sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  std::string payload(1013, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<char>('a' + i % 26);
  std::thread writer([&] {
    const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
    const char prefix[4] = {static_cast<char>(len >> 24),
                            static_cast<char>(len >> 16),
                            static_cast<char>(len >> 8),
                            static_cast<char>(len)};
    ASSERT_EQ(::send(sp[0], prefix, 2, MSG_NOSIGNAL), 2);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_EQ(::send(sp[0], prefix + 2, 2, MSG_NOSIGNAL), 2);
    for (std::size_t off = 0; off < payload.size(); off += 7) {
      const std::size_t n = std::min<std::size_t>(7, payload.size() - off);
      ASSERT_EQ(::send(sp[0], payload.data() + off, n, MSG_NOSIGNAL),
                static_cast<ssize_t>(n));
      if (off % 91 == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  const auto got = read_frame(sp[1]);
  writer.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  ::close(sp[0]);
  ::close(sp[1]);
}

TEST(FuzzProtocol, PartialWritesResumeAcrossAFullSocketBuffer) {
  // The short-write regression from the other side: write_frame pushing a
  // multi-megabyte frame through a shrunken send buffer while the reader
  // drains slowly -- every send() below accepts only part of the data.
  int sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  const int small = 8 * 1024;
  ASSERT_EQ(::setsockopt(sp[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small)),
            0);
  std::string payload(3u << 20, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<char>(i * 2654435761u >> 24);
  std::thread writer([&] { write_frame(sp[0], payload); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // fill it up
  const auto got = read_frame(sp[1]);
  writer.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  ::close(sp[0]);
  ::close(sp[1]);
}

TEST(FuzzProtocol, ConnectionLimitRefusesPolitelyAndRecovers) {
  HardenedServer fx("fuzz_connlimit", 0, 1);
  const int held = connect_client(fx.socket());
  {
    // Prove the first connection is live (and therefore counted).
    json::Value req = json::Value::object();
    req["op"] = "healthz";
    write_frame(held, req.dump());
    ASSERT_TRUE(read_frame(held).has_value());
  }
  // The second connection is over the cap: one error reply, then close.
  const int refused = connect_client(fx.socket());
  const auto reply = read_frame(refused);
  ASSERT_TRUE(reply.has_value());
  const json::Value v = json::Value::parse(*reply);
  EXPECT_FALSE(v.at("ok").as_bool());
  EXPECT_NE(v.at("error").as_string().find("connection limit"),
            std::string::npos);
  EXPECT_EQ(read_frame(refused), std::nullopt);
  ::close(refused);

  // Release the held slot; the server accepts again (the accept loop
  // reaps the finished connection thread on the next arrival).
  ::close(held);
  bool recovered = false;
  for (int i = 0; i < 100 && !recovered; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    try {
      recovered = fx.healthz().at("ok").as_bool();
    } catch (const Error&) {
      // refused again: the reap had not caught up yet; retry
    }
  }
  EXPECT_TRUE(recovered);
}

TEST(FuzzProtocol, IdleReaperClosesSilentConnections) {
  HardenedServer fx("fuzz_idle", /*idle_timeout_ms=*/100);
  const int fd = connect_client(fx.socket());
  const auto t0 = std::chrono::steady_clock::now();
  // Send nothing; the server must hang up on us, not park a thread.
  EXPECT_EQ(read_frame(fd), std::nullopt);
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(waited, std::chrono::seconds(5));
  ::close(fd);
  EXPECT_TRUE(fx.healthz().at("ok").as_bool());
}

}  // namespace
}  // namespace bricksim::serve
