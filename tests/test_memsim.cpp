// Unit tests for the memory simulator: set-associative cache semantics and
// the multi-level hierarchy's traffic accounting.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "arch/arch.h"
#include "common/error.h"
#include "memsim/cache.h"
#include "memsim/hierarchy.h"

namespace bricksim::memsim {
namespace {

arch::CacheParams tiny_cache(int lines, int assoc, int line_bytes = 64) {
  return {static_cast<std::uint64_t>(lines) * line_bytes, line_bytes,
          line_bytes / 2, assoc};
}

TEST(SetAssocCache, ColdMissThenHit) {
  SetAssocCache c(tiny_cache(8, 2));
  EXPECT_FALSE(c.access(5, false).hit);
  EXPECT_TRUE(c.access(5, false).hit);
  EXPECT_TRUE(c.probe(5));
  EXPECT_FALSE(c.probe(6));
}

TEST(SetAssocCache, LruEvictionWithinSet) {
  // 4 sets, 2 ways: lines 0, 4, 8 all map to set 0.
  SetAssocCache c(tiny_cache(8, 2));
  c.access(0, false);
  c.access(4, false);
  c.access(0, false);   // 0 is now MRU
  c.access(8, false);   // evicts 4 (LRU)
  EXPECT_TRUE(c.probe(0));
  EXPECT_FALSE(c.probe(4));
  EXPECT_TRUE(c.probe(8));
}

TEST(SetAssocCache, DirtyEvictionReportsWriteback) {
  SetAssocCache c(tiny_cache(8, 2));
  c.access(0, true);  // dirty
  c.access(4, false);
  auto r = c.access(8, false);  // evicts dirty 0
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.wb_line, 0u);
}

TEST(SetAssocCache, CleanEvictionNoWriteback) {
  SetAssocCache c(tiny_cache(8, 2));
  c.access(0, false);
  c.access(4, false);
  EXPECT_FALSE(c.access(8, false).writeback);
}

TEST(SetAssocCache, InstallDirtySkipsFillButTracksDirty) {
  SetAssocCache c(tiny_cache(8, 2));
  auto r = c.install_dirty(3);
  EXPECT_FALSE(r.hit);
  EXPECT_EQ(c.dirty_lines(), 1u);
  EXPECT_TRUE(c.install_dirty(3).hit);
  EXPECT_EQ(c.dirty_lines(), 1u);
}

TEST(SetAssocCache, ResetDropsEverything) {
  SetAssocCache c(tiny_cache(8, 2));
  c.access(1, true);
  c.access(2, true);
  EXPECT_EQ(c.reset(), 2u);
  EXPECT_FALSE(c.probe(1));
  EXPECT_EQ(c.dirty_lines(), 0u);
}

TEST(SetAssocCache, RejectsDegenerateGeometry) {
  EXPECT_THROW(SetAssocCache(arch::CacheParams{64, 0, 32, 2}), Error);
  EXPECT_THROW(SetAssocCache(arch::CacheParams{64, 64, 32, 0}), Error);
  EXPECT_THROW(SetAssocCache(arch::CacheParams{64, 64, 32, 4}),
               Error);  // smaller than one set
}

/// Property sweep: a cache with S sets and A ways must retain any working
/// set of <= A lines mapping to one set, for several geometries.
class CacheAssocSweep : public testing::TestWithParam<int> {};

TEST_P(CacheAssocSweep, RetainsWorkingSetUpToAssociativity) {
  const int assoc = GetParam();
  SetAssocCache c(tiny_cache(8 * assoc, assoc));
  const auto sets = c.num_sets();
  // `assoc` lines, all in set 0:
  for (int w = 0; w < assoc; ++w) c.access(w * sets, false);
  for (int round = 0; round < 3; ++round)
    for (int w = 0; w < assoc; ++w)
      EXPECT_TRUE(c.access(w * sets, false).hit) << "way " << w;
  // One more line in the set evicts exactly one resident.
  c.access(static_cast<std::uint64_t>(assoc) * sets, false);
  int resident = 0;
  for (int w = 0; w < assoc; ++w) resident += c.probe(w * sets) ? 1 : 0;
  EXPECT_EQ(resident, assoc - 1);
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheAssocSweep,
                         testing::Values(1, 2, 4, 8, 16));

// --- Hierarchy ---------------------------------------------------------------

arch::GpuArch small_arch() {
  arch::GpuArch a = arch::make_a100();
  a.num_cores = 2;
  a.l1 = {4 * 1024, 128, 32, 4};
  a.l2 = {64 * 1024, 128, 32, 16};
  return a;
}

TEST(Hierarchy, SectorAndLineCounting) {
  MemoryHierarchy h(small_arch());
  // 256B aligned read: 8 sectors of 32B, 2 lines of 128B.
  auto s = h.access(0, 0, 256, false);
  EXPECT_EQ(s.sectors, 8);
  EXPECT_EQ(s.lines, 2);
  EXPECT_TRUE(s.dram_touch);
  // Misaligned by 8 bytes: 9 sectors, 3 lines.
  auto s2 = h.access(0, 128 * 1024 + 8, 256, false);
  EXPECT_EQ(s2.sectors, 9);
  EXPECT_EQ(s2.lines, 3);
}

TEST(Hierarchy, ColdReadGoesToHbmOnceThenCaches) {
  MemoryHierarchy h(small_arch());
  h.access(0, 0, 256, false);
  EXPECT_EQ(h.traffic().hbm_read_bytes, 256u);
  auto s = h.access(0, 0, 256, false);  // L1 hit
  EXPECT_FALSE(s.dram_touch);
  EXPECT_EQ(h.traffic().hbm_read_bytes, 256u);
  EXPECT_EQ(h.traffic().l1_hits, 2u);
  EXPECT_EQ(h.traffic().l1_read_bytes, 512u);
}

TEST(Hierarchy, L2ServesOtherCoresL1Misses) {
  MemoryHierarchy h(small_arch());
  h.access(0, 0, 256, false);
  h.access(1, 0, 256, false);  // other core: L1 miss, L2 hit
  EXPECT_EQ(h.traffic().hbm_read_bytes, 256u);
  EXPECT_EQ(h.traffic().l2_hits, 2u);
}

TEST(Hierarchy, FullLineStreamingStoreAvoidsRmwFill) {
  MemoryHierarchy h(small_arch());
  h.access(0, 0, 256, true);  // full lines
  EXPECT_EQ(h.traffic().hbm_read_bytes, 0u);
  h.flush_l2();
  EXPECT_EQ(h.traffic().hbm_write_bytes, 256u);
}

TEST(Hierarchy, PartialLineStoreFillsFromHbm) {
  MemoryHierarchy h(small_arch());
  h.access(0, 32, 64, true);  // partial line
  EXPECT_EQ(h.traffic().hbm_read_bytes, 128u);  // RMW fill
}

TEST(Hierarchy, RmwStoresFlagForcesFill) {
  MemoryHierarchy h(small_arch());
  h.access(0, 0, 256, true, false, /*rmw_stores=*/true);
  EXPECT_EQ(h.traffic().hbm_read_bytes, 256u);
}

TEST(Hierarchy, BypassSkipsL2Allocation) {
  MemoryHierarchy h(small_arch());
  h.access(0, 0, 256, false, /*bypass_l2=*/true);
  EXPECT_EQ(h.traffic().hbm_read_bytes, 256u);
  // A second core misses L1; with no L2 copy it goes to HBM again.
  h.access(1, 0, 256, false, /*bypass_l2=*/true);
  EXPECT_EQ(h.traffic().hbm_read_bytes, 512u);
}

TEST(Hierarchy, CapacityEvictionWritesBackDirtyLines) {
  MemoryHierarchy h(small_arch());  // 64KB L2
  h.access(0, 0, 128, true);        // one dirty line
  // Stream 128KB of reads through: the dirty line must eventually go out.
  for (std::uint64_t a = 4096; a < 4096 + 128 * 1024; a += 128)
    h.access(0, a, 128, false);
  EXPECT_EQ(h.traffic().hbm_write_bytes, 128u);
}

TEST(Hierarchy, ScratchCountsOnlyL1Bytes) {
  MemoryHierarchy h(small_arch());
  auto s = h.scratch_access(256, true);
  EXPECT_EQ(s.sectors, 8);
  EXPECT_EQ(h.traffic().l1_write_bytes, 256u);
  EXPECT_EQ(h.traffic().hbm_total(), 0u);
  EXPECT_FALSE(s.dram_touch);
}

TEST(Hierarchy, PageOverheadChargesReads) {
  MemoryHierarchy h(small_arch());
  h.charge_page_overhead(96);
  EXPECT_EQ(h.traffic().hbm_read_bytes, 96u);
}

TEST(Hierarchy, ResetClearsStateAndCounters) {
  MemoryHierarchy h(small_arch());
  h.access(0, 0, 256, false);
  h.reset();
  EXPECT_EQ(h.traffic().hbm_read_bytes, 0u);
  auto s = h.access(0, 0, 256, false);
  EXPECT_TRUE(s.dram_touch);  // cold again
}

TEST(SetAssocCache, LruEvictionOrderFollowsRecency) {
  // 4 ways of set 0 filled in order 0,4,8,12 (with 4 sets: lines n*4),
  // then re-touched in the order 8,0,12,4 -- so the eviction order of
  // successive conflict misses must be 8,0,12,4 (oldest stamp first).
  SetAssocCache c(tiny_cache(16, 4));
  const auto sets = c.num_sets();
  ASSERT_EQ(sets, 4u);
  for (std::uint64_t w = 0; w < 4; ++w) c.access(w * sets, false);
  const std::uint64_t order[] = {2 * sets, 0 * sets, 3 * sets, 1 * sets};
  for (const std::uint64_t ln : order) EXPECT_TRUE(c.access(ln, false).hit);
  std::uint64_t next_conflict = 4 * sets;
  for (const std::uint64_t victim : order) {
    c.access(next_conflict, false);
    next_conflict += sets;
    EXPECT_FALSE(c.probe(victim)) << "line " << victim;
  }
}

TEST(SetAssocCache, InstallDirtyEvictionWritesBackDirtyVictim) {
  // Set 0 full of dirty lines; a streaming install into the same set must
  // evict the LRU one and report it as a writeback.
  SetAssocCache c(tiny_cache(8, 2));
  const auto sets = c.num_sets();
  c.access(0 * sets, true);
  c.access(1 * sets, true);
  EXPECT_EQ(c.dirty_lines(), 2u);
  auto r = c.install_dirty(2 * sets);
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.wb_line, 0u * sets);
  // Victim's dirty bit left with it: still 2 dirty residents (1,2).
  EXPECT_EQ(c.dirty_lines(), 2u);
}

TEST(SetAssocCache, TouchRefreshesRecencyWithoutAllocating) {
  SetAssocCache c(tiny_cache(8, 2));
  const auto sets = c.num_sets();
  EXPECT_FALSE(c.touch(0));  // absent: no allocation
  EXPECT_FALSE(c.probe(0));
  c.access(0 * sets, false);
  c.access(1 * sets, false);
  EXPECT_TRUE(c.touch(0));  // line 0 is now MRU...
  c.access(2 * sets, false);
  EXPECT_TRUE(c.probe(0));  // ...so the conflict miss evicted line 1*sets
  EXPECT_FALSE(c.probe(1 * sets));
}

TEST(SetAssocCache, NonPowerOfTwoSetCount) {
  // 3 sets x 2 ways: exercises the fastmod set-index path (the A100's L1
  // and L2 set counts are not powers of two either).
  SetAssocCache c(tiny_cache(6, 2));
  ASSERT_EQ(c.num_sets(), 3u);
  // Lines 0, 3, 6 collide in set 0; 1 and 2 land elsewhere untouched.
  c.access(0, false);
  c.access(3, false);
  c.access(1, false);
  c.access(2, false);
  EXPECT_TRUE(c.access(0, false).hit);
  c.access(6, false);  // evicts 3 (LRU of set 0)
  EXPECT_TRUE(c.probe(0));
  EXPECT_FALSE(c.probe(3));
  EXPECT_TRUE(c.probe(1));
  EXPECT_TRUE(c.probe(2));
}

TEST(SetAssocCache, SetIndexExactForHugeLineAddresses) {
  // Line addresses above 2^32 take the division fallback; they must land in
  // the same set as their modular equivalents.
  SetAssocCache c(tiny_cache(6, 2));
  const std::uint64_t big = (1ull << 33) * 3;  // == 0 mod 3
  c.access(big, false);
  c.access(big + 3, false);
  EXPECT_TRUE(c.access(big, false).hit);  // big is now MRU
  c.access(0, false);  // third line of set 0: evicts `big + 3` (LRU)
  EXPECT_TRUE(c.probe(big));
  EXPECT_FALSE(c.probe(big + 3));
  EXPECT_TRUE(c.probe(0));
}

TEST(Hierarchy, UnalignedStoreSplitsStreamingAndRmwLines) {
  // 128B lines; a 256B store at offset +32 covers: line 0 partially (RMW
  // fill from HBM), line 1 fully (streaming install, no fill), line 2
  // partially (RMW fill).
  MemoryHierarchy h(small_arch());
  auto s = h.access(0, 32, 256, true);
  EXPECT_EQ(s.lines, 3);
  EXPECT_TRUE(s.dram_touch);
  EXPECT_EQ(h.traffic().hbm_read_bytes, 2u * 128);  // two RMW fills
  EXPECT_EQ(h.traffic().l2_write_bytes, 3u * 128);
}

TEST(Hierarchy, AlignedFullLineStoreTakesStreamingPathForAllLines) {
  MemoryHierarchy h(small_arch());
  auto s = h.access(0, 0, 256, true);  // two aligned full lines
  EXPECT_EQ(s.lines, 2);
  EXPECT_TRUE(s.dram_touch);
  EXPECT_EQ(h.traffic().hbm_read_bytes, 0u);  // no RMW fills at all
  EXPECT_EQ(h.traffic().l2_write_bytes, 2u * 128);
  h.flush_l2();
  EXPECT_EQ(h.traffic().hbm_write_bytes, 2u * 128);
}

TEST(Hierarchy, StoreTouchKeepsResidentLineWarmInL1) {
  // A store to a line resident in L1 refreshes its recency (write-through
  // touch), so a later conflict evicts the colder line instead.
  MemoryHierarchy h(small_arch());
  const std::uint64_t set_stride = 4u * 1024 / 4;  // L1: 4KiB, 4-way, 128B
  h.access(0, 0, 128, false);
  h.access(0, set_stride, 128, false);
  h.access(0, 2 * set_stride, 128, false);
  h.access(0, 3 * set_stride, 128, false);  // set 0 of L1 is now full
  h.access(0, 0, 128, true);                // store touch: line 0 MRU
  h.access(0, 4 * set_stride, 128, false);  // conflict miss
  const auto before = h.traffic().l1_hits;
  h.access(0, 0, 128, false);
  EXPECT_EQ(h.traffic().l1_hits, before + 1);  // line 0 survived
}

// L1Shard + replay_l2_* is the two-phase decomposition of access(): a
// trace replayed through per-core shards, with the logged L2-bound lines
// merged back in schedule order, must reproduce the serial hierarchy's
// Traffic counter-for-counter.  (ExecPlan::replay_sharded builds on
// exactly this; tests/test_shard.cpp pins the end-to-end promise.)
TEST(L1Shard, TwoShardTraceMatchesSerialHierarchy) {
  const arch::GpuArch arch = small_arch();  // 2 cores
  struct Access {
    int core;
    std::uint64_t addr;
    std::uint32_t bytes;
    bool write, bypass, rmw;
  };
  // Aligned/misaligned loads and stores, an L1 hit, cross-core L2 reuse,
  // a bypass load, an rmw store, and enough lines to force L2 evictions.
  std::vector<Access> trace;
  for (int rep = 0; rep < 3; ++rep)
    for (std::uint64_t b = 0; b < 600; ++b) {
      trace.push_back({static_cast<int>(b % 2), b * 256, 256,
                       /*write=*/b % 3 == 0, /*bypass=*/b % 7 == 0,
                       /*rmw=*/b % 5 == 0});
      trace.push_back({static_cast<int>((b + 1) % 2), b * 256 + 8, 64,
                       false, false, false});
    }

  MemoryHierarchy serial(arch);
  for (const auto& a : trace)
    serial.access(a.core, a.addr, a.bytes, a.write, a.bypass, a.rmw);
  serial.scratch_access(96, true);

  MemoryHierarchy merged(arch);
  L1Shard s0(arch, 0, 1), s1(arch, 1, 2);
  for (std::size_t n = 0; n < trace.size(); ++n) {
    const auto& a = trace[n];
    (a.core == 0 ? s0 : s1).access(a.core, a.addr, a.bytes, a.write,
                                   a.bypass, a.rmw, /*order=*/n,
                                   /*block=*/0, /*page_key=*/a.addr >> 12);
  }
  s0.scratch_access(96, true);
  // k-way merge of the two event streams by ascending order key.
  const auto &e0 = s0.events(), &e1 = s1.events();
  std::size_t i = 0, j = 0;
  while (i < e0.size() || j < e1.size()) {
    const bool from0 =
        j == e1.size() || (i < e0.size() && e0[i].order < e1[j].order);
    const ShardEvent& e = from0 ? e0[i++] : e1[j++];
    switch (e.op) {
      case L2Op::Load:
        merged.replay_l2_load(e.line);
        break;
      case L2Op::StoreFull:
        merged.replay_l2_store_full(e.line);
        break;
      case L2Op::StorePartial:
        merged.replay_l2_store_partial(e.line);
        break;
      case L2Op::PageOnly:
        break;  // bypass counters were charged in phase 1
    }
  }
  merged.merge_traffic(s0.traffic());
  merged.merge_traffic(s1.traffic());
  EXPECT_TRUE(merged.traffic() == serial.traffic());

  // And the flush (dirty L2 writeback) agrees too.
  serial.flush_l2();
  merged.flush_l2();
  EXPECT_TRUE(merged.traffic() == serial.traffic());
}

TEST(L1Shard, RejectsBadCoreRange) {
  const arch::GpuArch arch = small_arch();
  EXPECT_THROW(L1Shard(arch, 1, 1), Error);   // empty
  EXPECT_THROW(L1Shard(arch, -1, 1), Error);  // below zero
  EXPECT_THROW(L1Shard(arch, 0, 3), Error);   // beyond num_cores
}

// --- L1Tags (the dirty-free L1 tag store of the SoA replay engine) ----------

TEST(L1Tags, MatchesSetAssocCacheOnNeverDirtyWorkload) {
  // L1Tags promises bit-identical residency and recency transitions to
  // SetAssocCache under the GPU L1's never-dirty workload (loads + touch).
  // Drive both with the same pseudo-random op stream over a small set count
  // (and a non-power-of-two one, covering the fastmod index) and compare
  // every returned hit/miss.
  for (const int lines : {16, 24}) {  // 4 sets and 6 sets at assoc 4
    SetAssocCache ref(tiny_cache(lines, 4));
    L1Tags tags(tiny_cache(lines, 4));
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    auto next = [&x] {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      return x;
    };
    for (int n = 0; n < 4000; ++n) {
      const std::uint64_t line = next() % 96;  // ~4x capacity: evictions
      switch (next() % 3) {
        case 0:
          EXPECT_EQ(tags.access(line), ref.access(line, false).hit) << n;
          break;
        case 1:
          EXPECT_EQ(tags.touch(line), ref.touch(line)) << n;
          break;
        default:
          EXPECT_EQ(tags.probe(line), ref.probe(line)) << n;
          break;
      }
    }
    EXPECT_EQ(ref.dirty_lines(), 0u);  // the workload really was dirty-free
  }
}

TEST(L1Tags, ShiftCopyFromReproducesShiftedHistory) {
  // shift_copy_from(A, d) must equal the cache state after replaying A's
  // entire access history shifted by d -- the exact property the congruence
  // lumping relies on when a mate core re-enters the general path.  Cover a
  // power-of-two and a non-power-of-two set count, and a delta that is not
  // a multiple of the set count.
  for (const int lines : {16, 24}) {
    for (const std::uint64_t delta : {1ull, 7ull, 1000003ull}) {
      L1Tags a(tiny_cache(lines, 4));
      L1Tags b(tiny_cache(lines, 4));
      std::uint64_t x = 0x2545f4914f6cdd1dull;
      auto next = [&x] {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
      };
      for (int n = 0; n < 2000; ++n) {
        const std::uint64_t line = next() % 80;
        a.access(line);
        b.access(line + delta);
      }
      L1Tags c(tiny_cache(lines, 4));
      c.shift_copy_from(a, delta);
      // Identical state: every further access must hit/miss identically,
      // including the evictions the shared recency order now drives.
      for (int n = 0; n < 2000; ++n) {
        const std::uint64_t line = next() % 160;
        EXPECT_EQ(c.access(line + delta), b.access(line + delta)) << n;
        EXPECT_EQ(c.probe(line), b.probe(line)) << n;
      }
    }
  }
}

TEST(L1Tags, ResetClearsResidency) {
  L1Tags tags(tiny_cache(16, 4));
  EXPECT_FALSE(tags.access(5));
  EXPECT_TRUE(tags.access(5));
  tags.reset();
  EXPECT_FALSE(tags.probe(5));
  EXPECT_FALSE(tags.access(5));
}

TEST(L1Tags, ShiftCopyFromRejectsMismatchedGeometry) {
  L1Tags a(tiny_cache(16, 4));
  L1Tags b(tiny_cache(32, 4));
  EXPECT_THROW(b.shift_copy_from(a, 1), Error);
}

TEST(Traffic, Accumulation) {
  Traffic a, b;
  a.hbm_read_bytes = 10;
  a.l1_hits = 1;
  b.hbm_read_bytes = 5;
  b.hbm_write_bytes = 7;
  a += b;
  EXPECT_EQ(a.hbm_read_bytes, 15u);
  EXPECT_EQ(a.hbm_write_bytes, 7u);
  EXPECT_EQ(a.hbm_total(), 22u);
  EXPECT_EQ(a.l1_hits, 1u);
}

}  // namespace
}  // namespace bricksim::memsim
