// Unit tests for the memory simulator: set-associative cache semantics and
// the multi-level hierarchy's traffic accounting.
#include <gtest/gtest.h>

#include "arch/arch.h"
#include "common/error.h"
#include "memsim/cache.h"
#include "memsim/hierarchy.h"

namespace bricksim::memsim {
namespace {

arch::CacheParams tiny_cache(int lines, int assoc, int line_bytes = 64) {
  return {static_cast<std::uint64_t>(lines) * line_bytes, line_bytes,
          line_bytes / 2, assoc};
}

TEST(SetAssocCache, ColdMissThenHit) {
  SetAssocCache c(tiny_cache(8, 2));
  EXPECT_FALSE(c.access(5, false).hit);
  EXPECT_TRUE(c.access(5, false).hit);
  EXPECT_TRUE(c.probe(5));
  EXPECT_FALSE(c.probe(6));
}

TEST(SetAssocCache, LruEvictionWithinSet) {
  // 4 sets, 2 ways: lines 0, 4, 8 all map to set 0.
  SetAssocCache c(tiny_cache(8, 2));
  c.access(0, false);
  c.access(4, false);
  c.access(0, false);   // 0 is now MRU
  c.access(8, false);   // evicts 4 (LRU)
  EXPECT_TRUE(c.probe(0));
  EXPECT_FALSE(c.probe(4));
  EXPECT_TRUE(c.probe(8));
}

TEST(SetAssocCache, DirtyEvictionReportsWriteback) {
  SetAssocCache c(tiny_cache(8, 2));
  c.access(0, true);  // dirty
  c.access(4, false);
  auto r = c.access(8, false);  // evicts dirty 0
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.wb_line, 0u);
}

TEST(SetAssocCache, CleanEvictionNoWriteback) {
  SetAssocCache c(tiny_cache(8, 2));
  c.access(0, false);
  c.access(4, false);
  EXPECT_FALSE(c.access(8, false).writeback);
}

TEST(SetAssocCache, InstallDirtySkipsFillButTracksDirty) {
  SetAssocCache c(tiny_cache(8, 2));
  auto r = c.install_dirty(3);
  EXPECT_FALSE(r.hit);
  EXPECT_EQ(c.dirty_lines(), 1u);
  EXPECT_TRUE(c.install_dirty(3).hit);
  EXPECT_EQ(c.dirty_lines(), 1u);
}

TEST(SetAssocCache, ResetDropsEverything) {
  SetAssocCache c(tiny_cache(8, 2));
  c.access(1, true);
  c.access(2, true);
  EXPECT_EQ(c.reset(), 2u);
  EXPECT_FALSE(c.probe(1));
  EXPECT_EQ(c.dirty_lines(), 0u);
}

TEST(SetAssocCache, RejectsDegenerateGeometry) {
  EXPECT_THROW(SetAssocCache(arch::CacheParams{64, 0, 32, 2}), Error);
  EXPECT_THROW(SetAssocCache(arch::CacheParams{64, 64, 32, 0}), Error);
  EXPECT_THROW(SetAssocCache(arch::CacheParams{64, 64, 32, 4}),
               Error);  // smaller than one set
}

/// Property sweep: a cache with S sets and A ways must retain any working
/// set of <= A lines mapping to one set, for several geometries.
class CacheAssocSweep : public testing::TestWithParam<int> {};

TEST_P(CacheAssocSweep, RetainsWorkingSetUpToAssociativity) {
  const int assoc = GetParam();
  SetAssocCache c(tiny_cache(8 * assoc, assoc));
  const auto sets = c.num_sets();
  // `assoc` lines, all in set 0:
  for (int w = 0; w < assoc; ++w) c.access(w * sets, false);
  for (int round = 0; round < 3; ++round)
    for (int w = 0; w < assoc; ++w)
      EXPECT_TRUE(c.access(w * sets, false).hit) << "way " << w;
  // One more line in the set evicts exactly one resident.
  c.access(static_cast<std::uint64_t>(assoc) * sets, false);
  int resident = 0;
  for (int w = 0; w < assoc; ++w) resident += c.probe(w * sets) ? 1 : 0;
  EXPECT_EQ(resident, assoc - 1);
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheAssocSweep,
                         testing::Values(1, 2, 4, 8, 16));

// --- Hierarchy ---------------------------------------------------------------

arch::GpuArch small_arch() {
  arch::GpuArch a = arch::make_a100();
  a.num_cores = 2;
  a.l1 = {4 * 1024, 128, 32, 4};
  a.l2 = {64 * 1024, 128, 32, 16};
  return a;
}

TEST(Hierarchy, SectorAndLineCounting) {
  MemoryHierarchy h(small_arch());
  // 256B aligned read: 8 sectors of 32B, 2 lines of 128B.
  auto s = h.access(0, 0, 256, false);
  EXPECT_EQ(s.sectors, 8);
  EXPECT_EQ(s.lines, 2);
  EXPECT_TRUE(s.dram_touch);
  // Misaligned by 8 bytes: 9 sectors, 3 lines.
  auto s2 = h.access(0, 128 * 1024 + 8, 256, false);
  EXPECT_EQ(s2.sectors, 9);
  EXPECT_EQ(s2.lines, 3);
}

TEST(Hierarchy, ColdReadGoesToHbmOnceThenCaches) {
  MemoryHierarchy h(small_arch());
  h.access(0, 0, 256, false);
  EXPECT_EQ(h.traffic().hbm_read_bytes, 256u);
  auto s = h.access(0, 0, 256, false);  // L1 hit
  EXPECT_FALSE(s.dram_touch);
  EXPECT_EQ(h.traffic().hbm_read_bytes, 256u);
  EXPECT_EQ(h.traffic().l1_hits, 2u);
  EXPECT_EQ(h.traffic().l1_read_bytes, 512u);
}

TEST(Hierarchy, L2ServesOtherCoresL1Misses) {
  MemoryHierarchy h(small_arch());
  h.access(0, 0, 256, false);
  h.access(1, 0, 256, false);  // other core: L1 miss, L2 hit
  EXPECT_EQ(h.traffic().hbm_read_bytes, 256u);
  EXPECT_EQ(h.traffic().l2_hits, 2u);
}

TEST(Hierarchy, FullLineStreamingStoreAvoidsRmwFill) {
  MemoryHierarchy h(small_arch());
  h.access(0, 0, 256, true);  // full lines
  EXPECT_EQ(h.traffic().hbm_read_bytes, 0u);
  h.flush_l2();
  EXPECT_EQ(h.traffic().hbm_write_bytes, 256u);
}

TEST(Hierarchy, PartialLineStoreFillsFromHbm) {
  MemoryHierarchy h(small_arch());
  h.access(0, 32, 64, true);  // partial line
  EXPECT_EQ(h.traffic().hbm_read_bytes, 128u);  // RMW fill
}

TEST(Hierarchy, RmwStoresFlagForcesFill) {
  MemoryHierarchy h(small_arch());
  h.access(0, 0, 256, true, false, /*rmw_stores=*/true);
  EXPECT_EQ(h.traffic().hbm_read_bytes, 256u);
}

TEST(Hierarchy, BypassSkipsL2Allocation) {
  MemoryHierarchy h(small_arch());
  h.access(0, 0, 256, false, /*bypass_l2=*/true);
  EXPECT_EQ(h.traffic().hbm_read_bytes, 256u);
  // A second core misses L1; with no L2 copy it goes to HBM again.
  h.access(1, 0, 256, false, /*bypass_l2=*/true);
  EXPECT_EQ(h.traffic().hbm_read_bytes, 512u);
}

TEST(Hierarchy, CapacityEvictionWritesBackDirtyLines) {
  MemoryHierarchy h(small_arch());  // 64KB L2
  h.access(0, 0, 128, true);        // one dirty line
  // Stream 128KB of reads through: the dirty line must eventually go out.
  for (std::uint64_t a = 4096; a < 4096 + 128 * 1024; a += 128)
    h.access(0, a, 128, false);
  EXPECT_EQ(h.traffic().hbm_write_bytes, 128u);
}

TEST(Hierarchy, ScratchCountsOnlyL1Bytes) {
  MemoryHierarchy h(small_arch());
  auto s = h.scratch_access(256, true);
  EXPECT_EQ(s.sectors, 8);
  EXPECT_EQ(h.traffic().l1_write_bytes, 256u);
  EXPECT_EQ(h.traffic().hbm_total(), 0u);
  EXPECT_FALSE(s.dram_touch);
}

TEST(Hierarchy, PageOverheadChargesReads) {
  MemoryHierarchy h(small_arch());
  h.charge_page_overhead(96);
  EXPECT_EQ(h.traffic().hbm_read_bytes, 96u);
}

TEST(Hierarchy, ResetClearsStateAndCounters) {
  MemoryHierarchy h(small_arch());
  h.access(0, 0, 256, false);
  h.reset();
  EXPECT_EQ(h.traffic().hbm_read_bytes, 0u);
  auto s = h.access(0, 0, 256, false);
  EXPECT_TRUE(s.dram_touch);  // cold again
}

TEST(Traffic, Accumulation) {
  Traffic a, b;
  a.hbm_read_bytes = 10;
  a.l1_hits = 1;
  b.hbm_read_bytes = 5;
  b.hbm_write_bytes = 7;
  a += b;
  EXPECT_EQ(a.hbm_read_bytes, 15u);
  EXPECT_EQ(a.hbm_write_bytes, 7u);
  EXPECT_EQ(a.hbm_total(), 22u);
  EXPECT_EQ(a.l1_hits, 1u);
}

}  // namespace
}  // namespace bricksim::memsim
