// Shard-invariance A/B suite for intra-kernel block-grid sharding
// (ExecPlan::replay_sharded).  The sharded replay promises BIT-IDENTICAL
// KernelReports to the serial replay at every shard count -- every traffic
// counter, every page count, every timing double, every functional value --
// so these tests compare with operator== (exact), never with tolerances:
//
//   * machine level: an everything-opcode program across shards {1,2,7,32}
//     x ExecMode x bypass x rmw x three architectures, against both the
//     serial plan replay and the legacy interpreter;
//   * launcher level: the full paper catalog (6 stencils x 3 variants) per
//     platform at 64^3 through Launcher::set_shards;
//   * sweep level: run_sweep with explicit --shards and the derived
//     two-level split, across --jobs 1 vs 8.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/grid.h"
#include "common/rng.h"
#include "dsl/stencil.h"
#include "harness/harness.h"
#include "model/launcher.h"
#include "model/progmodel.h"
#include "profiler/profiler.h"
#include "simt/execplan.h"
#include "simt/machine.h"

namespace bricksim {
namespace {

using codegen::Variant;

// Shard counts exercised everywhere: 1 (the fallback-to-serial path), an
// even split, a count that divides nothing evenly, and one beyond any test
// arch's core count (clamped internally to used_cores).
constexpr int kShardCounts[] = {1, 2, 7, 32};

// --- Kernel fixture (same shape as test_execplan.cpp) -----------------------

simt::Kernel make_kernel(const ir::Program& prog, Vec3 blocks,
                         std::vector<double>& in, std::vector<double>& out,
                         Vec3& padded) {
  const Vec3 interior{blocks.i * 8, blocks.j * 4, blocks.k * 4};
  padded = {interior.i + 16, interior.j + 16, interior.k + 16};
  in.assign(static_cast<std::size_t>(padded.volume()), 0.0);
  out.assign(static_cast<std::size_t>(padded.volume()), 0.0);
  SplitMix64 rng(17);
  for (double& v : in) v = rng.next_double(-1, 1);

  simt::DeviceAllocator dev(128);
  simt::GridBinding gi;
  gi.padded = padded;
  gi.ghost = {8, 8, 8};
  gi.device_base = dev.allocate(in.size() * kElemBytes);
  gi.data = in.data();
  gi.len = in.size();
  simt::GridBinding go = gi;
  go.device_base = dev.allocate(out.size() * kElemBytes);
  go.data = out.data();

  simt::Kernel k;
  k.program = &prog;
  k.blocks = blocks;
  k.tile = {8, 4, 4};
  k.grids = {gi, go};
  for (int n = 0; n < prog.num_constants(); ++n)
    k.constants.push_back(0.5 + n);
  return k;
}

ir::MemRef aref(int grid, int di, int dj = 0, int dk = 0) {
  ir::MemRef m;
  m.grid = grid;
  m.space = ir::Space::Array;
  m.di = di;
  m.dj = dj;
  m.dk = dk;
  m.vectorized = true;
  return m;
}

ir::MemRef spill_ref(int slot) {
  ir::MemRef m;
  m.space = ir::Space::Spill;
  m.slot = slot;
  return m;
}

/// Every opcode, including a spill round-trip and an unaligned (di=3)
/// vectorized load (the MI250X L2-bypass candidate), so each ShardEvent
/// kind (Load, StoreFull, StorePartial, PageOnly) is emitted.
ir::Program everything_program() {
  ir::Program p(8);
  p.add_constant("c0");
  p.add_constant("c1");
  const int a = p.load(aref(0, 0));
  const int b = p.load(aref(0, 3));  // unaligned: bypass candidate
  const int c = p.load(aref(0, 8));
  p.store(a, spill_ref(0));
  const int al = p.align(a, c, 3);
  const int s1 = p.add(a, b);
  const int s2 = p.mul(s1, al);
  const int s3 = p.fma(s2, b, a);
  const int s4 = p.mul_const(s3, 0);
  const int s5 = p.fma_const(s4, al, 1);
  const int sp = p.load(spill_ref(0));
  const int s6 = p.add(s5, sp);
  const int k0 = p.set_const(0);
  const int z = p.zero();
  const int s7 = p.add(s6, k0);
  const int s8 = p.add(s7, z);
  p.int_ops(5);
  p.store(s8, aref(1, 0));
  p.set_num_spill_slots(1);
  return p;
}

struct EngineRun {
  simt::KernelReport rep;
  std::vector<double> out;
};

EngineRun run_engine(simt::Engine eng, const arch::GpuArch& arch,
                     simt::ExecMode mode, bool bypass, bool rmw, Vec3 blocks,
                     int shards) {
  static const ir::Program prog = everything_program();
  std::vector<double> in, out;
  Vec3 padded;
  simt::Kernel k = make_kernel(prog, blocks, in, out, padded);
  k.bypass_l2_unaligned_vloads = bypass;
  k.streaming_stores = !rmw;
  k.read_streams = 2;  // page tracking on: shard page-set merge is exercised
  k.shuffle_cost_mult = 1.5;
  k.extra_cycles_per_load = 2.0;
  if (mode == simt::ExecMode::CountersOnly)
    for (auto& g : k.grids) g.data = nullptr;
  simt::Machine m(arch);
  return {m.run(k, mode, eng, shards), std::move(out)};
}

// --- Machine-level invariance -----------------------------------------------

class ShardMachine
    : public testing::TestWithParam<std::tuple<simt::ExecMode, bool, bool>> {};

TEST_P(ShardMachine, ReportsBitIdenticalAtEveryShardCount) {
  const auto [mode, bypass, rmw] = GetParam();
  // {4,4,2} = 32 blocks on a 4-core arch: several waves per replay, so the
  // wave/round/slot order key and the cross-wave L1 state both matter.
  const Vec3 blocks{4, 4, 2};
  for (const arch::GpuArch& base :
       {arch::make_a100(), arch::make_mi250x_gcd(), arch::make_pvc_stack()}) {
    arch::GpuArch arch = base;
    arch.num_cores = 4;
    const auto serial = run_engine(simt::Engine::Plan, arch, mode, bypass,
                                   rmw, blocks, /*shards=*/1);
    const auto interp = run_engine(simt::Engine::Interp, arch, mode, bypass,
                                   rmw, blocks, /*shards=*/1);
    EXPECT_TRUE(serial.rep == interp.rep) << arch.name << " (plan vs interp)";
    for (const int shards : kShardCounts) {
      const auto sharded = run_engine(simt::Engine::Plan, arch, mode, bypass,
                                      rmw, blocks, shards);
      EXPECT_TRUE(sharded.rep == serial.rep)
          << arch.name << " shards=" << shards;
      EXPECT_EQ(sharded.out, serial.out) << arch.name << " shards=" << shards;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndQuirks, ShardMachine,
    testing::Combine(testing::Values(simt::ExecMode::Functional,
                                     simt::ExecMode::CountersOnly),
                     testing::Bool(),   // bypass_l2_unaligned_vloads
                     testing::Bool()),  // rmw stores
    [](const auto& info) {
      std::string s = std::get<0>(info.param) == simt::ExecMode::Functional
                          ? "functional"
                          : "counters";
      if (std::get<1>(info.param)) s += "_bypass";
      if (std::get<2>(info.param)) s += "_rmw";
      return s;
    });

TEST(ShardMachine, FullCoreCountAndTinyGrids) {
  // Unmodified (full-core) architectures, plus grids smaller than the shard
  // count: a single block, and fewer blocks than cores.  Clamping must
  // quietly degrade to however many shards have work.
  for (const arch::GpuArch& arch :
       {arch::make_a100(), arch::make_mi250x_gcd(), arch::make_pvc_stack()}) {
    for (const Vec3 blocks : {Vec3{1, 1, 1}, Vec3{2, 1, 1}, Vec3{4, 4, 4}}) {
      const auto serial =
          run_engine(simt::Engine::Plan, arch, simt::ExecMode::Functional,
                     false, false, blocks, /*shards=*/1);
      for (const int shards : kShardCounts) {
        const auto sharded =
            run_engine(simt::Engine::Plan, arch, simt::ExecMode::Functional,
                       false, false, blocks, shards);
        EXPECT_TRUE(sharded.rep == serial.rep)
            << arch.name << " blocks=" << blocks.i << "x" << blocks.j << "x"
            << blocks.k << " shards=" << shards;
        EXPECT_EQ(sharded.out, serial.out) << arch.name;
      }
    }
  }
}

// --- Launcher-level invariance over the paper catalog -----------------------

class ShardCatalog : public testing::TestWithParam<std::string> {};

TEST_P(ShardCatalog, CountersBitIdenticalAcrossCatalog) {
  // Every (stencil, variant) of this platform at 64^3 through the full
  // production path (codegen -> regalloc -> binding -> machine), serial vs
  // each shard count.
  const auto platforms = model::paper_platforms();
  const model::Platform* pf = nullptr;
  for (const auto& p : platforms)
    if (p.label() == GetParam()) pf = &p;
  ASSERT_NE(pf, nullptr);

  model::Launcher serial({64, 64, 64});
  for (const auto& st : dsl::Stencil::paper_catalog()) {
    for (const auto v :
         {Variant::Array, Variant::ArrayCodegen, Variant::BricksCodegen}) {
      const auto a = serial.run(st, v, *pf);
      for (const int shards : {2, 7, 32}) {
        model::Launcher launcher({64, 64, 64});
        launcher.set_shards(shards);
        const auto b = launcher.run(st, v, *pf);
        EXPECT_TRUE(a.report == b.report)
            << st.name() << " " << codegen::variant_name(v) << " shards="
            << shards;
        EXPECT_EQ(a.normalized_flops, b.normalized_flops) << st.name();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperPlatforms, ShardCatalog,
    testing::ValuesIn([] {
      std::vector<std::string> labels;
      for (const auto& p : model::paper_platforms())
        labels.push_back(p.label());
      return labels;
    }()),
    [](const auto& info) {
      std::string s = info.param;
      for (char& c : s)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return s;
    });

TEST(ShardCatalog, FunctionalOutputsBitIdentical) {
  // Sharded functional runs must agree on the output grid values exactly:
  // out-of-place stencils write disjoint outputs per block, so shard order
  // cannot change a single bit.
  const auto st = dsl::Stencil::paper_catalog()[1];  // 13pt star, radius 2
  const Vec3 ghost{st.radius(), st.radius(), st.radius()};
  for (const auto& pf : model::paper_platforms()) {
    const Vec3 domain{2 * pf.gpu.simd_width, 8, 8};
    for (const auto v :
         {Variant::Array, Variant::ArrayCodegen, Variant::BricksCodegen}) {
      HostGrid in(domain, ghost);
      SplitMix64 rng(23);
      in.fill_random(rng);
      HostGrid out_serial(domain, {0, 0, 0}), out_sharded(domain, {0, 0, 0});
      model::Launcher serial(domain), sharded(domain);
      sharded.set_shards(7);
      const auto a = serial.run_functional(st, v, pf, in, out_serial);
      const auto b = sharded.run_functional(st, v, pf, in, out_sharded);
      EXPECT_TRUE(a.report == b.report)
          << pf.label() << " " << codegen::variant_name(v);
      for (int k = 0; k < domain.k; ++k)
        for (int j = 0; j < domain.j; ++j)
          for (int i = 0; i < domain.i; ++i)
            ASSERT_EQ(out_serial.at(i, j, k), out_sharded.at(i, j, k))
                << pf.label() << " " << codegen::variant_name(v) << " (" << i
                << "," << j << "," << k << ")";
    }
  }
}

// --- Sweep-level invariance (jobs x shards) ---------------------------------

TEST(ShardSweep, SweepBitIdenticalAcrossJobsAndShards) {
  // The two-level scheduler's core promise: the same SweepConfig produces a
  // bit-identical, identically ordered Sweep for every (jobs, shards)
  // split -- explicit --shards, the derived split, and jobs 1 vs 8.
  // BRICKSIM_OVERSUBSCRIBE lets jobs=8 actually spawn 8 threads on any CI
  // box (effective_jobs would otherwise clamp to the hardware).
  setenv("BRICKSIM_OVERSUBSCRIBE", "1", 1);
  harness::SweepConfig base;
  base.domain = {64, 64, 64};
  base.platforms = {model::paper_platforms()[0]};
  base.check_mode = analysis::CheckMode::Off;
  base.jobs = 1;

  const harness::Sweep serial = harness::run_sweep(base);

  std::vector<harness::SweepConfig> variants;
  {
    harness::SweepConfig c = base;  // explicit intra-kernel split, one lane
    c.shards = 7;
    variants.push_back(c);
  }
  {
    harness::SweepConfig c = base;  // outer x inner both > 1
    c.jobs = 8;
    c.shards = 2;
    variants.push_back(c);
  }
  {
    harness::SweepConfig c = base;  // derived split (shards = 0 default)
    c.jobs = 8;
    variants.push_back(c);
  }

  for (std::size_t v = 0; v < variants.size(); ++v) {
    const harness::Sweep sweep = harness::run_sweep(variants[v]);
    ASSERT_EQ(serial.measurements.size(), sweep.measurements.size());
    for (std::size_t n = 0; n < serial.measurements.size(); ++n) {
      EXPECT_TRUE(serial.measurements[n] == sweep.measurements[n])
          << "variant " << v << " (jobs=" << variants[v].jobs
          << " shards=" << variants[v].shards
          << ") slot " << n << ": " << serial.measurements[n].stencil << "/"
          << serial.measurements[n].variant;
    }
    EXPECT_TRUE(serial.rooflines == sweep.rooflines) << "variant " << v;
    EXPECT_TRUE(sweep.failures.empty()) << "variant " << v;
  }
  unsetenv("BRICKSIM_OVERSUBSCRIBE");
}

}  // namespace
}  // namespace bricksim
