// The paper's qualitative claims, asserted against the simulator at a
// reduced domain (128^3).  These are the SHAPE results the reproduction is
// judged by: who wins, by roughly what factor, and where the anomalies sit.
// Exact magnitudes are checked loosely (the paper ran 512^3 on real silicon;
// see EXPERIMENTS.md for the quantitative comparison at paper scale).
#include <gtest/gtest.h>

#include "common/stats.h"
#include "harness/harness.h"

namespace bricksim {
namespace {

using codegen::Variant;

class PaperClaims : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    harness::SweepConfig config;
    // 256 along i so even the W=64 MI250X decomposition has a healthy
    // interior-to-ghost-brick ratio; 128 elsewhere keeps the suite fast.
    config.domain = {256, 128, 128};
    sweep_ = new harness::Sweep(harness::run_sweep(config));
  }
  static void TearDownTestSuite() {
    delete sweep_;
    sweep_ = nullptr;
  }
  static const harness::Sweep& sweep() { return *sweep_; }

  static const profiler::Measurement& get(const std::string& stencil,
                                          const std::string& variant,
                                          const std::string& platform) {
    const auto* m = sweep().find(stencil, variant, platform);
    EXPECT_NE(m, nullptr) << stencil << "/" << variant << "/" << platform;
    return *m;
  }

  static double compulsory_gb() {
    return static_cast<double>(
               metrics::compulsory_bytes(sweep().config.domain)) /
           1e9;
  }

 private:
  static harness::Sweep* sweep_;
};

harness::Sweep* PaperClaims::sweep_ = nullptr;

const char* kStencils[] = {"7pt", "13pt", "19pt", "25pt", "27pt", "125pt"};
const char* kPlatforms[] = {"A100/CUDA",      "A100/HIP",
                            "A100/SYCL",      "MI250X-GCD/HIP",
                            "MI250X-GCD/SYCL", "PVC-Stack/SYCL"};

// Figure 3: "using bricks data layout gives a higher arithmetic intensity
// over tiled array data layout" -- on every platform and stencil.
TEST_F(PaperClaims, BricksBeatNaiveArraysInArithmeticIntensity) {
  for (const char* pf : kPlatforms)
    for (const char* st : kStencils)
      EXPECT_GT(get(st, "bricks codegen", pf).ai, get(st, "array", pf).ai)
          << st << " on " << pf;
}

// Figure 3: "bricks codegen achieves the highest performance ... across all
// kernels and stencil shapes and sizes on the NVIDIA A100".
TEST_F(PaperClaims, BricksCodegenFastestOnA100) {
  for (const char* st : kStencils) {
    const double bricks = get(st, "bricks codegen", "A100/CUDA").gflops;
    EXPECT_GE(bricks, get(st, "array", "A100/CUDA").gflops * 0.99) << st;
    EXPECT_GE(bricks, get(st, "array codegen", "A100/CUDA").gflops * 0.90)
        << st;
  }
}

// Section 5.1: "CUDA and HIP show the same performance and arithmetic
// intensity since the HIP interface is a wrapper for the NVIDIA compiler."
TEST_F(PaperClaims, CudaAndHipIdenticalOnA100) {
  for (const char* st : kStencils)
    for (const char* v : {"array", "array codegen", "bricks codegen"}) {
      const auto& cuda = get(st, v, "A100/CUDA");
      const auto& hip = get(st, v, "A100/HIP");
      EXPECT_DOUBLE_EQ(cuda.gflops, hip.gflops) << st << " " << v;
      EXPECT_EQ(cuda.hbm_bytes, hip.hbm_bytes) << st << " " << v;
    }
}

// Section 5.1: on A100, SYCL shows a large gap between naive and codegen
// kernels (up to 13x star / 26x cube), far larger than CUDA's (<= ~2x).
TEST_F(PaperClaims, SyclNaiveGapIsClosedByCodegen) {
  auto speedup = [&](const char* st, const char* pf) {
    return get(st, "bricks codegen", pf).gflops / get(st, "array", pf).gflops;
  };
  // Large SYCL gaps, growing with stencil size.
  EXPECT_GT(speedup("25pt", "A100/SYCL"), 4.0);
  EXPECT_GT(speedup("125pt", "A100/SYCL"), 10.0);
  EXPECT_GT(speedup("125pt", "A100/SYCL"), speedup("7pt", "A100/SYCL"));
  // CUDA gaps stay modest for star stencils.
  EXPECT_LT(speedup("7pt", "A100/CUDA"), 2.0);
  EXPECT_LT(speedup("25pt", "A100/CUDA"), 2.5);
}

// Figure 5 (left): "most of the stencils perform better using CUDA instead
// of SYCL", and bricks codegen narrows the gap.
TEST_F(PaperClaims, CudaOutperformsSyclOnA100AndBricksNarrowTheGap) {
  int cuda_wins = 0, total = 0;
  for (const char* st : kStencils)
    for (const char* v : {"array", "array codegen", "bricks codegen"}) {
      ++total;
      if (get(st, v, "A100/CUDA").gflops >
          get(st, v, "A100/SYCL").gflops * 1.02)
        ++cuda_wins;
    }
  EXPECT_GE(cuda_wins, (2 * total) / 3);

  for (const char* st : kStencils) {
    const double naive_ratio =
        get(st, "array", "A100/CUDA").gflops /
        get(st, "array", "A100/SYCL").gflops;
    const double bricks_ratio =
        get(st, "bricks codegen", "A100/CUDA").gflops /
        get(st, "bricks codegen", "A100/SYCL").gflops;
    EXPECT_LT(bricks_ratio, naive_ratio) << st;
    EXPECT_LT(bricks_ratio, 2.2) << st;  // close to the diagonal
  }
}

// Figure 5 (right): CUDA moves less data than SYCL on A100, and bricks
// kernels sit significantly closer to the compulsory lower bound.
TEST_F(PaperClaims, CudaMovesLessDataThanSyclOnA100) {
  for (const char* st : kStencils) {
    const double cuda =
        static_cast<double>(get(st, "bricks codegen", "A100/CUDA").hbm_bytes);
    const double sycl =
        static_cast<double>(get(st, "bricks codegen", "A100/SYCL").hbm_bytes);
    EXPECT_GT(sycl, cuda * 1.2) << st;
    EXPECT_LT(cuda / 1e9, 1.9 * compulsory_gb()) << st;
  }
}

// Figure 6: on the MI250X GCD, HIP kernels sit near the lower bound EXCEPT
// `array codegen`, which moves far more data (the >10 GB anomaly); bricks
// codegen behaves the same under HIP and SYCL.
TEST_F(PaperClaims, HipArrayCodegenAnomalyOnMi250x) {
  for (const char* st : kStencils) {
    const double naive_gb =
        get(st, "array", "MI250X-GCD/HIP").hbm_bytes / 1e9;
    const double cg_gb =
        get(st, "array codegen", "MI250X-GCD/HIP").hbm_bytes / 1e9;
    const double bricks_gb =
        get(st, "bricks codegen", "MI250X-GCD/HIP").hbm_bytes / 1e9;
    EXPECT_GT(cg_gb, 1.5 * naive_gb) << st;          // the anomaly
    EXPECT_LT(bricks_gb, 2.0 * compulsory_gb()) << st;
    EXPECT_LT(naive_gb, 2.2 * compulsory_gb()) << st;
  }
  // Bricks codegen: same data movement under both models (within 5%).
  for (const char* st : kStencils) {
    const double hip =
        get(st, "bricks codegen", "MI250X-GCD/HIP").hbm_bytes / 1e9;
    const double sycl =
        get(st, "bricks codegen", "MI250X-GCD/SYCL").hbm_bytes / 1e9;
    EXPECT_NEAR(hip / sycl, 1.0, 0.05) << st;
  }
}

// Figure 4: the naive array kernel moves by far the most L1 bytes; for the
// high-order stencils ~10x the codegen variants.
TEST_F(PaperClaims, NaiveArraysDominateL1Traffic) {
  for (const char* pf : kPlatforms) {
    for (const char* st : kStencils) {
      const auto naive = get(st, "array", pf).l1_bytes;
      const auto cg = get(st, "array codegen", pf).l1_bytes;
      const auto bricks = get(st, "bricks codegen", pf).l1_bytes;
      EXPECT_GE(naive, cg) << st << " " << pf;
      EXPECT_GT(naive, bricks) << st << " " << pf;
    }
    const auto naive125 = get("125pt", "array", pf).l1_bytes;
    const auto bricks125 = get("125pt", "bricks codegen", pf).l1_bytes;
    EXPECT_GT(static_cast<double>(naive125) / bricks125, 6.0) << pf;
  }
}

// Table 3 / Table 5 headline numbers: P > 60% (fraction of Roofline) and
// ~70% (fraction of theoretical AI) when averaged; 125pt is the weakest
// Table 3 row.
TEST_F(PaperClaims, PennycookMetricsLandNearPaperAverages) {
  std::vector<double> p3, p5;
  for (const auto& st : sweep().config.stencils) {
    std::vector<double> e3, e5;
    for (const auto& pf : model::metric_platforms()) {
      const auto& m = get(st.name(), "bricks codegen", pf.label());
      e3.push_back(metrics::fraction_of_roofline(
          sweep().rooflines.at(pf.label()).roofline, m));
      e5.push_back(metrics::fraction_of_theoretical_ai(st, m));
    }
    p3.push_back(metrics::pennycook_p(e3));
    p5.push_back(metrics::pennycook_p(e5));
  }
  const double avg3 = mean(p3);
  const double avg5 = mean(p5);
  EXPECT_GT(avg3, 0.50);
  EXPECT_LT(avg3, 0.90);
  EXPECT_GT(avg5, 0.50);
  EXPECT_LT(avg5, 0.90);
  // 125pt (last row) is the weakest of the fraction-of-Roofline rows.
  EXPECT_EQ(std::min_element(p3.begin(), p3.end()) - p3.begin(), 5);
}

// Figure 7: every bricks-codegen point has potential speedup >= 1, and the
// PVC points show the largest headroom among SYCL platforms (its fraction
// of Roofline decays fastest with stencil size).
TEST_F(PaperClaims, PotentialSpeedupWellFormed) {
  for (const auto& pf : model::metric_platforms()) {
    for (const auto& st : sweep().config.stencils) {
      const auto& m = get(st.name(), "bricks codegen", pf.label());
      const double fa = metrics::fraction_of_theoretical_ai(st, m);
      const double fr = metrics::fraction_of_roofline(
          sweep().rooflines.at(pf.label()).roofline, m);
      const double s = metrics::potential_speedup(fa, fr);
      EXPECT_GE(s, 1.0) << st.name() << " " << pf.label();
      EXPECT_LT(s, 12.0) << st.name() << " " << pf.label();
    }
  }
}

// Section 4.4 / Figure 3: PVC's fraction of Roofline decays steeply with
// stencil radius (77% -> 47% across the star stencils in Table 3).
TEST_F(PaperClaims, PvcFractionDecaysWithRadius) {
  const auto& rl = sweep().rooflines.at("PVC-Stack/SYCL").roofline;
  double prev = 1.0;
  for (const char* st : {"7pt", "13pt", "19pt", "25pt"}) {
    const double f = metrics::fraction_of_roofline(
        rl, get(st, "bricks codegen", "PVC-Stack/SYCL"));
    EXPECT_LT(f, prev + 0.02) << st;
    prev = f;
  }
  const double f7 = metrics::fraction_of_roofline(
      rl, get("7pt", "bricks codegen", "PVC-Stack/SYCL"));
  const double f25 = metrics::fraction_of_roofline(
      rl, get("25pt", "bricks codegen", "PVC-Stack/SYCL"));
  EXPECT_GT(f7, f25 * 1.25);
}

}  // namespace
}  // namespace bricksim
