// Unit tests for the common module: types, statistics, tables, CLI, RNG,
// and HostGrid.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/cli.h"
#include "common/error.h"
#include "common/grid.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"

namespace bricksim {
namespace {

TEST(Vec3, VolumeAndArithmetic) {
  const Vec3 a{2, 3, 4};
  EXPECT_EQ(a.volume(), 24);
  EXPECT_EQ((a + Vec3{1, 1, 1}).volume(), 60);
  EXPECT_EQ(a - a, (Vec3{0, 0, 0}));
  EXPECT_EQ(a * 2, (Vec3{4, 6, 8}));
}

TEST(Vec3, LinearIndexIsLexicographicIInnermost) {
  const Vec3 n{4, 5, 6};
  long expect = 0;
  for (int k = 0; k < n.k; ++k)
    for (int j = 0; j < n.j; ++j)
      for (int i = 0; i < n.i; ++i)
        EXPECT_EQ(linear_index({i, j, k}, n), expect++);
}

TEST(Vec3, OrderingIsKMajor) {
  EXPECT_LT((Vec3{5, 0, 0}), (Vec3{0, 1, 0}));
  EXPECT_LT((Vec3{0, 5, 0}), (Vec3{0, 0, 1}));
  EXPECT_LT((Vec3{1, 2, 3}), (Vec3{2, 2, 3}));
}

TEST(Stats, MeanAndHarmonicMean) {
  const double xs[] = {1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 7.0 / 3.0);
  // harmonic mean of {1,2,4} = 3 / (1 + 1/2 + 1/4)
  EXPECT_DOUBLE_EQ(harmonic_mean(xs), 3.0 / 1.75);
}

TEST(Stats, HarmonicMeanZeroPropagates) {
  const double xs[] = {0.5, 0.0, 0.9};
  EXPECT_EQ(harmonic_mean(xs), 0.0);
  EXPECT_EQ(harmonic_mean(std::span<const double>{}), 0.0);
}

TEST(Stats, HarmonicLeqGeomLeqArithmetic) {
  SplitMix64 rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> xs;
    for (int n = 0; n < 10; ++n) xs.push_back(rng.next_double(0.01, 10.0));
    const double h = harmonic_mean(xs);
    const double g = geomean(xs);
    const double a = mean(xs);
    EXPECT_LE(h, g * (1 + 1e-12));
    EXPECT_LE(g, a * (1 + 1e-12));
  }
}

TEST(Stats, PearsonPerfectCorrelation) {
  const double xs[] = {1, 2, 3, 4};
  const double ys[] = {2, 4, 6, 8};
  const double zs[] = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerateIsZero) {
  const double xs[] = {1, 1, 1};
  const double ys[] = {1, 2, 3};
  EXPECT_EQ(pearson(xs, ys), 0.0);
  EXPECT_EQ(pearson(xs, std::span<const double>{}), 0.0);
}

TEST(Stats, MinMaxStddev) {
  const double xs[] = {3.0, 1.0, 2.0};
  EXPECT_EQ(min_of(xs), 1.0);
  EXPECT_EQ(max_of(xs), 3.0);
  // Sample (n-1) estimator: variance of {3,1,2} is (1 + 1 + 0) / 2.
  EXPECT_NEAR(stddev(xs), 1.0, 1e-12);
  const double one[] = {5.0};
  EXPECT_EQ(stddev(one), 0.0);
}

TEST(Table, AlignedPrintAndCsv) {
  Table t({"name", "value"});
  t.add_row({"x", Table::fmt(1.5, 1)});
  t.add_row({"longer", Table::pct(0.616)});
  EXPECT_EQ(t.num_rows(), 2u);

  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("longer"), std::string::npos);
  EXPECT_NE(os.str().find("62%"), std::string::npos);

  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_NE(csv.str().find("name,value"), std::string::npos);
  EXPECT_NE(csv.str().find("x,1.5"), std::string::npos);
}

TEST(Table, CsvQuotesAndEscapesPerRfc4180) {
  // Regression: fields containing commas/quotes/newlines used to be
  // mangled (comma -> semicolon) instead of quoted.
  Table t({"name", "with,comma"});
  t.add_row({"a\"b", "line1\nline2"});
  t.add_row({"plain", "13pt, star"});
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(),
            "name,\"with,comma\"\n"
            "\"a\"\"b\",\"line1\nline2\"\n"
            "plain,\"13pt, star\"\n");
}

TEST(Table, RejectsAriyMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Cli, ParsesBothFlagForms) {
  const char* argv[] = {"prog", "--n", "256", "--mode=fast", "--verbose"};
  Cli cli(5, argv, {{"n", ""}, {"mode", ""}, {"verbose", ""}});
  EXPECT_EQ(cli.get_long("n", 0), 256);
  EXPECT_EQ(cli.get("mode", ""), "fast");
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.has("absent"));
  EXPECT_EQ(cli.get_double("absent", 1.5), 1.5);
}

TEST(Cli, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--typo", "1"};
  EXPECT_THROW(Cli(3, argv, {{"n", ""}}), Error);
}

TEST(Cli, RejectsMalformedNumericValues) {
  const char* argv[] = {"prog", "--n=abc", "--x=1.5ghz"};
  Cli cli(3, argv, {{"n", ""}, {"x", ""}});
  try {
    cli.get_long("n", 0);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("--n expects an integer"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("'abc'"), std::string::npos);
  }
  try {
    cli.get_double("x", 0);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("--x expects a number"),
              std::string::npos);
  }
}

TEST(Cli, RejectsPartiallyConsumedNumbers) {
  const char* argv[] = {"prog", "--n=12x3"};
  Cli cli(2, argv, {{"n", ""}});
  EXPECT_THROW(cli.get_long("n", 0), Error);
}

TEST(Cli, NegativeValueWithEquals) {
  const char* argv[] = {"prog", "--shift=-3", "--scale=-2.5"};
  Cli cli(3, argv, {{"shift", ""}, {"scale", ""}});
  EXPECT_EQ(cli.get_long("shift", 0), -3);
  EXPECT_DOUBLE_EQ(cli.get_double("scale", 0), -2.5);
}

TEST(Cli, NegativeValueAsSeparateArg) {
  const char* argv[] = {"prog", "--shift", "-3", "--verbose"};
  Cli cli(4, argv, {{"shift", ""}, {"verbose", ""}});
  EXPECT_EQ(cli.get_long("shift", 0), -3);
  EXPECT_TRUE(cli.has("verbose"));
}

TEST(Cli, ValueFlagAtArgvEndRejectsEmptyValue) {
  // A value-bearing flag with nothing after it parses as present-but-empty;
  // the numeric getters must reject that instead of returning 0.
  const char* argv[] = {"prog", "--n"};
  Cli cli(2, argv, {{"n", ""}});
  EXPECT_TRUE(cli.has("n"));
  EXPECT_THROW(cli.get_long("n", 64), Error);
  EXPECT_THROW(cli.get_double("n", 64), Error);
}

TEST(Rng, DeterministicAndInRange) {
  SplitMix64 a(7), b(7), c(8);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
  for (int n = 0; n < 1000; ++n) {
    const double d = a.next_double(-2.0, 3.0);
    EXPECT_GE(d, -2.0);
    EXPECT_LT(d, 3.0);
    EXPECT_LT(a.next_below(17), 17u);
  }
}

TEST(HostGrid, GhostAddressingAndRoundTrip) {
  HostGrid g({4, 4, 4}, {2, 2, 2});
  g.at(-2, -2, -2) = 1.0;
  g.at(5, 5, 5) = 2.0;
  g.at(0, 0, 0) = 3.0;
  EXPECT_EQ(g.at(-2, -2, -2), 1.0);
  EXPECT_EQ(g.at(5, 5, 5), 2.0);
  EXPECT_EQ(g.at(0, 0, 0), 3.0);
  EXPECT_EQ(g.padded(), (Vec3{8, 8, 8}));
  EXPECT_EQ(g.raw().size(), 512u);
}

TEST(HostGrid, FillLinearIsAffine) {
  HostGrid g({4, 4, 4}, {1, 1, 1});
  g.fill_linear(1.0, 10.0, 100.0);
  EXPECT_EQ(g.at(2, 3, 1) - g.at(1, 3, 1), 1.0);
  EXPECT_EQ(g.at(1, 3, 1) - g.at(1, 2, 1), 10.0);
  EXPECT_EQ(g.at(1, 3, 2) - g.at(1, 3, 1), 100.0);
}

TEST(HostGrid, RejectsBadExtents) {
  EXPECT_THROW(HostGrid({0, 4, 4}, {1, 1, 1}), Error);
  EXPECT_THROW(HostGrid({4, 4, 4}, {-1, 0, 0}), Error);
}

TEST(ErrorMacros, RequireAndAssertThrowWithContext) {
  try {
    BRICKSIM_REQUIRE(1 == 2, "custom message");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom message"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace bricksim
