// Tests for the pressure-aware instruction scheduler: semantics preserved
// bit-for-bit (only order changes), pressure reduced on gather-mode
// high-order kernels, store order kept, and spill counts improved at a
// fixed register budget.
#include <gtest/gtest.h>

#include "codegen/codegen.h"
#include "common/grid.h"
#include "common/rng.h"
#include "dsl/reference.h"
#include "ir/regalloc.h"
#include "ir/schedule.h"
#include "model/launcher.h"

namespace bricksim::ir {
namespace {

Program gather_program(const dsl::Stencil& st, codegen::Variant v, int w) {
  codegen::Options opts;
  opts.force_gather = true;
  return codegen::lower(st, v, w, opts).program;
}

TEST(Schedule, PreservesInstructionMultiset) {
  const Program p =
      gather_program(dsl::Stencil::cube(2), codegen::Variant::BricksCodegen,
                     32);
  const ScheduleResult r = schedule_for_pressure(p);
  ASSERT_EQ(r.program.insts().size(), p.insts().size());
  auto census = [](const Program& prog) {
    std::map<Op, int> m;
    for (const auto& in : prog.insts()) ++m[in.op];
    return m;
  };
  EXPECT_EQ(census(p), census(r.program));
}

TEST(Schedule, ReducesPressureOnGatherCube) {
  const Program p =
      gather_program(dsl::Stencil::cube(2), codegen::Variant::BricksCodegen,
                     32);
  const ScheduleResult r = schedule_for_pressure(p);
  EXPECT_EQ(r.max_live_before, max_live_values(p));
  EXPECT_LT(r.max_live_after, r.max_live_before);
}

TEST(Schedule, FewerSpillsAtFixedBudget) {
  const Program p =
      gather_program(dsl::Stencil::cube(2), codegen::Variant::BricksCodegen,
                     32);
  const ScheduleResult r = schedule_for_pressure(p);
  const auto before = allocate_registers(p, 64);
  const auto after = allocate_registers(r.program, 64);
  EXPECT_LE(after.spill_loads, before.spill_loads);
  EXPECT_LT(after.spill_loads, before.spill_loads);  // strictly better here
}

TEST(Schedule, StoresKeepRelativeOrder) {
  const Program p =
      gather_program(dsl::Stencil::star(2), codegen::Variant::BricksCodegen,
                     32);
  const ScheduleResult r = schedule_for_pressure(p);
  auto store_refs = [](const Program& prog) {
    std::vector<std::tuple<int, int, int>> v;
    for (const auto& in : prog.insts())
      if (in.op == Op::VStore) v.push_back({in.mem.vi, in.mem.vj, in.mem.vk});
    return v;
  };
  EXPECT_EQ(store_refs(p), store_refs(r.program));
}

TEST(Schedule, IdempotentOnTinyPrograms) {
  Program p(8);
  ir::MemRef m;
  m.grid = 0;
  const int v = p.load(m);
  ir::MemRef o;
  o.grid = 1;
  p.store(v, o);
  const ScheduleResult r = schedule_for_pressure(p);
  EXPECT_EQ(r.program.insts().size(), 2u);
  EXPECT_EQ(r.max_live_after, 1);
}

/// End to end: scheduling must not change results AT ALL (dataflow
/// untouched, so even floating-point association is identical).
TEST(Schedule, BitExactThroughTheLauncher) {
  const auto pf = model::paper_platforms().front();
  const Vec3 domain{64, 16, 16};
  for (const auto& st : {dsl::Stencil::star(4), dsl::Stencil::cube(2)}) {
    const Vec3 ghost{st.radius(), st.radius(), st.radius()};
    HostGrid in(domain, ghost), plain(domain, {0, 0, 0}),
        scheduled(domain, {0, 0, 0});
    SplitMix64 rng(55);
    in.fill_random(rng);

    const model::Launcher launcher(domain);
    codegen::Options base;
    base.force_gather = true;  // the pressure-heavy mode
    codegen::Options sched = base;
    sched.reorder_for_pressure = true;
    const auto a = launcher.run_functional(
        st, codegen::Variant::BricksCodegen, pf, in, plain, base);
    const auto b = launcher.run_functional(
        st, codegen::Variant::BricksCodegen, pf, in, scheduled, sched);
    EXPECT_EQ(dsl::max_rel_error(plain, scheduled), 0.0) << st.name();
    // The scheduled version never spills more.
    EXPECT_LE(b.spill_slots, a.spill_slots) << st.name();
  }
}

}  // namespace
}  // namespace bricksim::ir
