// Tests for analysis::planverify, the ExecPlan differential verifier: a
// freshly decoded plan for every paper configuration must verify clean,
// and every seeded decode mutation -- one per decoded field -- must be
// rejected with a divergence naming that field.
//
// Memory-side and plan-level mutations run in CountersOnly mode against
// real lowered kernels from Launcher::prepare() (whose bindings carry no
// element data, exactly like the benchmark sweeps).  Compute-side fields
// (folded constants, arithmetic operands) only enter the replay stream in
// Functional mode, so those mutations use a small hand-built kernel with
// backing storage, the same shape test_execplan.cpp uses.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/planverify.h"
#include "common/error.h"
#include "common/grid.h"
#include "dsl/stencil.h"
#include "model/launcher.h"
#include "model/progmodel.h"
#include "simt/execplan.h"
#include "simt/machine.h"

namespace bricksim::analysis {
namespace {

using simt::ExecMode;
using simt::ExecPlan;
using PKind = ExecPlan::PKind;

model::Platform platform(const std::string& label) {
  for (const auto& pf : model::paper_platforms())
    if (pf.label() == label) return pf;
  throw Error("unknown platform label: " + label);
}

/// Prepares a real lowered kernel (counters-only bindings) for one config.
model::PreparedLaunch prepare(const dsl::Stencil& st, codegen::Variant v,
                              const model::Platform& pf) {
  model::Launcher launcher({64, 64, 64});
  launcher.set_check_mode(CheckMode::Off);
  return launcher.prepare(st, v, pf, {});
}

bool has_field(const PlanReport& r, const std::string& field) {
  for (const auto& d : r.diags)
    if (d.field == field) return true;
  return false;
}

/// Verifies `plan` after `mutate` corrupted it and expects a divergence on
/// `field`; the pristine plan must have verified clean first.
template <typename Fn>
void expect_rejected(ExecPlan& plan, const simt::Kernel& kernel,
                     const std::string& field, Fn mutate) {
  ASSERT_TRUE(verify_plan(plan, kernel).ok())
      << "pristine plan did not verify";
  mutate(plan);
  const PlanReport r = verify_plan(plan, kernel);
  EXPECT_FALSE(r.ok()) << "mutation of '" << field << "' not caught";
  EXPECT_TRUE(has_field(r, field)) << "expected a '" << field
                                   << "' divergence, got:\n"
                                   << r.to_string();
}

std::size_t first_of(const ExecPlan& plan, PKind kind) {
  for (std::size_t i = 0; i < plan.insts().size(); ++i)
    if (plan.insts()[i].kind == kind) return i;
  throw Error("plan has no instruction of the requested kind");
}

// --- Array-kernel decode mutations (CountersOnly, real lowered kernel) ------

class PlanVerifyArray : public testing::Test {
 protected:
  PlanVerifyArray()
      : pf_(platform("A100/CUDA")),
        prep_(prepare(dsl::Stencil::star(1), codegen::Variant::ArrayCodegen,
                      pf_)),
        plan_(prep_.kernel, pf_.gpu, ExecMode::CountersOnly) {}

  model::Platform pf_;
  model::PreparedLaunch prep_;
  ExecPlan plan_;
};

TEST_F(PlanVerifyArray, PristinePlanVerifiesClean) {
  const PlanReport r = verify_plan(plan_, prep_.kernel);
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_GT(r.insts_verified, 0);
  EXPECT_GT(r.bounds_checked, 0);
}

TEST_F(PlanVerifyArray, RejectsMutatedKind) {
  expect_rejected(plan_, prep_.kernel, "kind", [](ExecPlan& p) {
    auto& in = p.mutable_insts()[first_of(p, PKind::LoadArray)];
    in.kind = PKind::StoreArray;
  });
}

TEST_F(PlanVerifyArray, RejectsMutatedIdx0) {
  expect_rejected(plan_, prep_.kernel, "idx0", [](ExecPlan& p) {
    p.mutable_insts()[first_of(p, PKind::LoadArray)].idx0 += 1;
  });
}

TEST_F(PlanVerifyArray, RejectsMutatedRowKey) {
  expect_rejected(plan_, prep_.kernel, "row_key0", [](ExecPlan& p) {
    p.mutable_insts()[first_of(p, PKind::LoadArray)].row_key0 ^= 1;
  });
}

TEST_F(PlanVerifyArray, RejectsMutatedGridSlot) {
  expect_rejected(plan_, prep_.kernel, "grid", [](ExecPlan& p) {
    p.mutable_insts()[first_of(p, PKind::LoadArray)].grid ^= 1;
  });
}

TEST_F(PlanVerifyArray, RejectsMutatedDestination) {
  expect_rejected(plan_, prep_.kernel, "dst", [](ExecPlan& p) {
    auto& in = p.mutable_insts()[first_of(p, PKind::LoadArray)];
    in.dst += static_cast<std::uint32_t>(p.vec_width());
  });
}

TEST_F(PlanVerifyArray, RejectsMutatedStoreOperand) {
  expect_rejected(plan_, prep_.kernel, "a", [](ExecPlan& p) {
    auto& in = p.mutable_insts()[first_of(p, PKind::StoreArray)];
    in.a += static_cast<std::uint32_t>(p.vec_width());
  });
}

TEST_F(PlanVerifyArray, RejectsMutatedBypassFlag) {
  expect_rejected(plan_, prep_.kernel, "bypass_candidate", [](ExecPlan& p) {
    p.mutable_insts()[first_of(p, PKind::LoadArray)].bypass_candidate ^= true;
  });
}

TEST_F(PlanVerifyArray, RejectsMutatedSoaKindLane) {
  expect_rejected(plan_, prep_.kernel, "soa.kind", [](ExecPlan& p) {
    p.mutable_soa().kind[first_of(p, PKind::LoadArray)] = PKind::StoreArray;
  });
}

TEST_F(PlanVerifyArray, RejectsMutatedSoaFlagsLane) {
  expect_rejected(plan_, prep_.kernel, "soa.flags", [](ExecPlan& p) {
    p.mutable_soa().flags[first_of(p, PKind::LoadArray)] ^=
        ExecPlan::kSoaBypassCand;
  });
}

TEST_F(PlanVerifyArray, RejectsMutatedSoaAddendSlot) {
  expect_rejected(plan_, prep_.kernel, "soa.sel", [](ExecPlan& p) {
    p.mutable_soa().sel[first_of(p, PKind::LoadArray)] += 1;
  });
}

TEST_F(PlanVerifyArray, RejectsMutatedSoaAddressTemplate) {
  expect_rejected(plan_, prep_.kernel, "soa.tmpl", [](ExecPlan& p) {
    p.mutable_soa().tmpl[first_of(p, PKind::LoadArray)] += kElemBytes;
  });
}

TEST_F(PlanVerifyArray, RejectsMutatedSoaRowKeyLane) {
  expect_rejected(plan_, prep_.kernel, "soa.row_key", [](ExecPlan& p) {
    p.mutable_soa().row_key0[first_of(p, PKind::LoadArray)] ^= 1;
  });
}

TEST_F(PlanVerifyArray, RejectsTruncatedSoaLanes) {
  expect_rejected(plan_, prep_.kernel, "soa.size",
                  [](ExecPlan& p) { p.mutable_soa().kind.pop_back(); });
}

TEST_F(PlanVerifyArray, RejectsMutatedLumpFactor) {
  expect_rejected(plan_, prep_.kernel, "lump.G",
                  [](ExecPlan& p) { p.mutable_lump_factor() += 1; });
}

TEST_F(PlanVerifyArray, RejectsMutatedLumpDelta) {
  expect_rejected(plan_, prep_.kernel, "lump.delta", [](ExecPlan& p) {
    p.mutable_lump_delta_bytes() += kElemBytes;
  });
}

TEST_F(PlanVerifyArray, RejectsTruncatedStream) {
  expect_rejected(plan_, prep_.kernel, "stream",
                  [](ExecPlan& p) { p.mutable_insts().pop_back(); });
}

TEST_F(PlanVerifyArray, RejectsMutatedGridStride) {
  expect_rejected(plan_, prep_.kernel, "bj",
                  [](ExecPlan& p) { p.mutable_grids()[0].bj += 1; });
}

TEST_F(PlanVerifyArray, RejectsMutatedGridBase) {
  expect_rejected(plan_, prep_.kernel, "base",
                  [](ExecPlan& p) { p.mutable_grids()[0].base ^= 64; });
}

TEST_F(PlanVerifyArray, RejectsMutatedAluAggregates) {
  // CountersOnly replay costs ALU work from per-block aggregates; a decode
  // bug there skews every measurement while staying functionally invisible.
  expect_rejected(plan_, prep_.kernel, "alu.flops",
                  [](ExecPlan& p) { p.mutable_alu().flops += 1; });
}

TEST_F(PlanVerifyArray, RejectsMutatedAluLaneAggregates) {
  expect_rejected(plan_, prep_.kernel, "alu.fp_lanes",
                  [](ExecPlan& p) { p.mutable_alu().fp_lanes += 1.0; });
}

// --- Brick-kernel decode mutations (CountersOnly) ----------------------------

class PlanVerifyBrick : public testing::Test {
 protected:
  PlanVerifyBrick()
      : pf_(platform("A100/CUDA")),
        prep_(prepare(dsl::Stencil::star(1), codegen::Variant::BricksCodegen,
                      pf_)),
        plan_(prep_.kernel, pf_.gpu, ExecMode::CountersOnly) {}

  model::Platform pf_;
  model::PreparedLaunch prep_;
  ExecPlan plan_;
};

TEST_F(PlanVerifyBrick, PristinePlanVerifiesClean) {
  const PlanReport r = verify_plan(plan_, prep_.kernel);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST_F(PlanVerifyBrick, RejectsMutatedAdjacencyCode) {
  expect_rejected(plan_, prep_.kernel, "nbr_code", [](ExecPlan& p) {
    auto& in = p.mutable_insts()[first_of(p, PKind::LoadBrick)];
    in.nbr_code = in.nbr_code == 13 ? 12 : 13;
  });
}

TEST_F(PlanVerifyBrick, RejectsMutatedElemsPerBrick) {
  expect_rejected(plan_, prep_.kernel, "elems_per_brick",
                  [](ExecPlan& p) { p.mutable_grids()[0].elems_per_brick += 1; });
}

TEST_F(PlanVerifyBrick, RejectsMutatedAdjacencyBinding) {
  expect_rejected(plan_, prep_.kernel, "adjacency",
                  [](ExecPlan& p) { p.mutable_grids()[0].adjacency = nullptr; });
}

TEST_F(PlanVerifyBrick, RejectsMutatedBrickSoaAddendSlot) {
  // The brick addend slot encodes (grid, adjacency code); a wrong slot
  // resolves a different neighbour per block.
  expect_rejected(plan_, prep_.kernel, "soa.sel", [](ExecPlan& p) {
    p.mutable_soa().sel[first_of(p, PKind::LoadBrick)] += 1;
  });
}

TEST_F(PlanVerifyBrick, RejectsMutatedLumpFactor) {
  expect_rejected(plan_, prep_.kernel, "lump.G",
                  [](ExecPlan& p) { p.mutable_lump_factor() += 1; });
}

// --- Functional-mode compute fields (hand-built kernel with storage) ---------

ir::MemRef aref(int grid, int di) {
  ir::MemRef m;
  m.grid = grid;
  m.space = ir::Space::Array;
  m.di = di;
  m.vectorized = true;
  return m;
}

/// load -> fma with a folded constant -> store: the smallest program whose
/// Functional-mode stream carries operand offsets and a folded `cv`.
ir::Program fmac_program() {
  ir::Program p(8);
  p.add_constant("c0");
  const int a = p.load(aref(0, 0));
  const int b = p.load(aref(0, 8));
  const int s = p.fma_const(a, b, 0);
  p.store(s, aref(1, 0));
  return p;
}

/// A Functional-mode kernel over real storage (decode requires data
/// pointers there); same construction as test_execplan.cpp.
class PlanVerifyFunctional : public testing::Test {
 protected:
  PlanVerifyFunctional() : prog_(fmac_program()), dev_(128) {
    const Vec3 blocks{2, 2, 2};
    const Vec3 interior{blocks.i * 8, blocks.j * 4, blocks.k * 4};
    const Vec3 padded{interior.i + 16, interior.j + 16, interior.k + 16};
    in_.assign(static_cast<std::size_t>(padded.volume()), 1.0);
    out_.assign(in_.size(), 0.0);

    simt::GridBinding gi;
    gi.padded = padded;
    gi.ghost = {8, 8, 8};
    gi.device_base = dev_.allocate(in_.size() * kElemBytes);
    gi.data = in_.data();
    gi.len = in_.size();
    simt::GridBinding go = gi;
    go.device_base = dev_.allocate(out_.size() * kElemBytes);
    go.data = out_.data();

    kernel_.program = &prog_;
    kernel_.blocks = blocks;
    kernel_.tile = {8, 4, 4};
    kernel_.grids = {gi, go};
    kernel_.constants = {0.5};
  }

  ExecPlan make_plan() const {
    return ExecPlan(kernel_, platform("A100/CUDA").gpu,
                    ExecMode::Functional);
  }

  ir::Program prog_;
  simt::DeviceAllocator dev_;
  std::vector<double> in_, out_;
  simt::Kernel kernel_;
};

TEST_F(PlanVerifyFunctional, PristinePlanVerifiesClean) {
  ExecPlan plan = make_plan();
  const PlanReport r = verify_plan(plan, kernel_);
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_EQ(r.insts_verified, static_cast<long>(plan.num_insts()));
}

TEST_F(PlanVerifyFunctional, RejectsMutatedFoldedConstant) {
  ExecPlan plan = make_plan();
  expect_rejected(plan, kernel_, "cv", [](ExecPlan& p) {
    p.mutable_insts()[first_of(p, PKind::FmaC)].cv += 0.5;
  });
}

TEST_F(PlanVerifyFunctional, RejectsMutatedComputeOperand) {
  ExecPlan plan = make_plan();
  expect_rejected(plan, kernel_, "a", [](ExecPlan& p) {
    auto& in = p.mutable_insts()[first_of(p, PKind::FmaC)];
    in.a += static_cast<std::uint32_t>(p.vec_width());
  });
}

TEST_F(PlanVerifyFunctional, RejectsMutatedComputeKind) {
  ExecPlan plan = make_plan();
  expect_rejected(plan, kernel_, "kind", [](ExecPlan& p) {
    p.mutable_insts()[first_of(p, PKind::FmaC)].kind = PKind::MulC;
  });
}

// --- enforce_plan ------------------------------------------------------------

TEST(PlanVerifyEnforce, ThrowsNamingContextAndField) {
  const model::Platform pf = platform("A100/CUDA");
  const model::PreparedLaunch prep =
      prepare(dsl::Stencil::star(1), codegen::Variant::ArrayCodegen, pf);
  ExecPlan plan(prep.kernel, pf.gpu, ExecMode::CountersOnly);
  plan.mutable_insts()[first_of(plan, PKind::LoadArray)].idx0 += 1;
  const PlanReport r = verify_plan(plan, prep.kernel);
  ASSERT_FALSE(r.ok());
  EXPECT_THROW(enforce_plan(r, "7pt/array codegen on A100"), Error);
  try {
    enforce_plan(r, "7pt/array codegen on A100");
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("7pt/array codegen on A100"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("idx0"), std::string::npos);
  }
  EXPECT_NO_THROW(enforce_plan(PlanReport{}, "clean"));
}

// --- Clean catalog -----------------------------------------------------------

// Every paper configuration's decode verifies clean on every platform: the
// differential gate (--verify-plan) adds zero false positives.
TEST(PlanVerifyCatalog, FullCatalogDecodesVerifyClean) {
  model::Launcher launcher({64, 64, 64});
  launcher.set_check_mode(CheckMode::Off);
  long verified = 0;
  for (const auto& pf : model::paper_platforms()) {
    for (const auto& st : dsl::Stencil::paper_catalog()) {
      for (const auto v :
           {codegen::Variant::Array, codegen::Variant::ArrayCodegen,
            codegen::Variant::BricksCodegen}) {
        const model::PreparedLaunch prep = launcher.prepare(st, v, pf, {});
        ExecPlan plan(prep.kernel, pf.gpu, ExecMode::CountersOnly);
        const PlanReport r = verify_plan(plan, prep.kernel);
        EXPECT_TRUE(r.ok()) << pf.label() << " " << st.name() << " "
                            << codegen::variant_name(v) << "\n"
                            << r.to_string();
        verified += r.insts_verified;
      }
    }
  }
  EXPECT_GT(verified, 0);
}

// The launcher-level wiring: set_verify_plan(true) installs the hook and a
// clean catalog config still runs end to end.
TEST(PlanVerifyCatalog, LauncherVerifyPlanGateRunsClean) {
  model::Launcher launcher({64, 64, 64});
  launcher.set_check_mode(CheckMode::Off);
  launcher.set_verify_plan(true);
  const model::Platform pf = platform("A100/CUDA");
  EXPECT_NO_THROW(launcher.run(dsl::Stencil::star(1),
                               codegen::Variant::BricksCodegen, pf, {}));
}

}  // namespace
}  // namespace bricksim::analysis
