// Unit and property tests for the stencil DSL: expression extraction,
// shape classification, the Table 2 catalogue, the Table 4 theoretical
// arithmetic intensities, and the scalar reference evaluator.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "dsl/expr.h"
#include "dsl/reference.h"
#include "dsl/stencil.h"

namespace bricksim::dsl {
namespace {

TEST(Expr, Figure1Extracts13PointStar) {
  Index i(0), j(1), k(2);
  Grid input("in", 3), output("out", 3);
  ConstRef a0("MPI_B0"), a1("MPI_B1"), a2("MPI_B2");
  auto calc = a0 * input(i, j, k) + a1 * input(i + 1, j, k) +
              a1 * input(i - 1, j, k) + a1 * input(i, j + 1, k) +
              a1 * input(i, j - 1, k) + a1 * input(i, j, k + 1) +
              a1 * input(i, j, k - 1) + a2 * input(i + 2, j, k) +
              a2 * input(i - 2, j, k) + a2 * input(i, j + 2, k) +
              a2 * input(i, j - 2, k) + a2 * input(i, j, k + 2) +
              a2 * input(i, j, k - 2);
  const StencilProgram prog = output(i, j, k).assign(calc);
  EXPECT_EQ(prog.in_grid, "in");
  EXPECT_EQ(prog.out_grid, "out");
  EXPECT_EQ(prog.terms.size(), 13u);

  const Stencil st = Stencil::from_program(prog);
  EXPECT_EQ(st.shape(), Shape::Star);
  EXPECT_EQ(st.radius(), 2);
  EXPECT_EQ(st.num_points(), 13);
  EXPECT_EQ(st.num_unique_coefficients(), 3);
  EXPECT_EQ(st.name(), "13pt");
}

TEST(Expr, CoefficientDistributesOverParenthesisedSum) {
  Index i(0), j(1), k(2);
  Grid in("in", 3), out("out", 3);
  ConstRef c("c"), d("d");
  auto calc = c * (in(i + 1, j, k) + in(i - 1, j, k)) + d * in(i, j, k);
  const Stencil st = Stencil::from_program(out(i, j, k).assign(calc));
  EXPECT_EQ(st.num_points(), 3);
  EXPECT_EQ(st.num_unique_coefficients(), 2);
}

TEST(Expr, BareAccessGetsImplicitUnitCoefficient) {
  Index i(0), j(1), k(2);
  Grid in("in", 3), out("out", 3);
  auto calc = Expr(in(i + 1, j, k)) + Expr(in(i - 1, j, k));
  const Stencil st = Stencil::from_program(out(i, j, k).assign(calc));
  ASSERT_EQ(st.groups().size(), 1u);
  EXPECT_EQ(st.groups()[0].coeff, "one");
  EXPECT_EQ(st.groups()[0].value, 1.0);
}

TEST(Expr, RejectsNonStencilForms) {
  Index i(0), j(1), k(2);
  Grid in("in", 3), in2("in2", 3), out("out", 3);
  ConstRef c("c"), d("d");

  // Duplicate offset.
  EXPECT_THROW(out(i, j, k).assign(c * in(i, j, k) + d * in(i, j, k)), Error);
  // Two input grids.
  EXPECT_THROW(out(i, j, k).assign(c * in(i, j, k) + c * in2(i, j, k)),
               Error);
  // Product of two accesses.
  EXPECT_THROW(out(i, j, k).assign(Expr(in(i, j, k)) * Expr(in(i + 1, j, k))),
               Error);
  // Nested coefficients.
  EXPECT_THROW(out(i, j, k).assign(c * (d * in(i, j, k))), Error);
  // In-place update.
  EXPECT_THROW(out(i, j, k).assign(c * out(i + 1, j, k)), Error);
  // Off-centre output.
  EXPECT_THROW(out(i + 1, j, k).assign(c * in(i, j, k)), Error);
  // Wrong index order.
  EXPECT_THROW(in(IndexExpr{1, 0}, IndexExpr{0, 0}, IndexExpr{2, 0}), Error);
}

TEST(Expr, IndexValidation) {
  EXPECT_THROW(Index(-1), Error);
  EXPECT_THROW(Index(3), Error);
  EXPECT_THROW(Grid("g", 2), Error);
  EXPECT_THROW(Grid("", 3), Error);
  EXPECT_THROW(ConstRef(""), Error);
}

// --- Catalogue: paper Table 2 -----------------------------------------------

struct Table2Row {
  Shape shape;
  int radius, points, coeffs;
};

class Catalog : public testing::TestWithParam<Table2Row> {};

TEST_P(Catalog, MatchesPaperTable2) {
  const auto& row = GetParam();
  const Stencil st = row.shape == Shape::Star ? Stencil::star(row.radius)
                                              : Stencil::cube(row.radius);
  EXPECT_EQ(st.shape(), row.shape);
  EXPECT_EQ(st.num_points(), row.points);
  EXPECT_EQ(st.num_unique_coefficients(), row.coeffs);
  EXPECT_EQ(st.name(), std::to_string(row.points) + "pt");
  // Offsets unique and within radius.
  const auto offs = st.offsets();
  EXPECT_EQ(static_cast<int>(offs.size()), row.points);
  for (const Vec3& o : offs) {
    EXPECT_LE(std::abs(o.i), row.radius);
    EXPECT_LE(std::abs(o.j), row.radius);
    EXPECT_LE(std::abs(o.k), row.radius);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable2, Catalog,
    testing::Values(Table2Row{Shape::Star, 1, 7, 2},
                    Table2Row{Shape::Star, 2, 13, 3},
                    Table2Row{Shape::Star, 3, 19, 4},
                    Table2Row{Shape::Star, 4, 25, 5},
                    Table2Row{Shape::Cube, 1, 27, 4},
                    Table2Row{Shape::Cube, 2, 125, 10}),
    [](const testing::TestParamInfo<Table2Row>& info) {
      return shape_name(info.param.shape) + std::to_string(info.param.radius);
    });

TEST(Catalog, PaperOrderAndSymmetry) {
  const auto cat = Stencil::paper_catalog();
  ASSERT_EQ(cat.size(), 6u);
  EXPECT_EQ(cat[0].name(), "7pt");
  EXPECT_EQ(cat[5].name(), "125pt");
  // Every stencil is symmetric: offset set closed under negation.
  for (const auto& st : cat) {
    const auto offs = st.offsets();
    for (const Vec3& o : offs) {
      const Vec3 neg{-o.i, -o.j, -o.k};
      EXPECT_NE(std::find(offs.begin(), offs.end(), neg), offs.end());
    }
  }
}

// --- Theoretical AI: paper Table 4 -------------------------------------------

TEST(TheoreticalAi, MatchesPaperTable4Exactly) {
  EXPECT_DOUBLE_EQ(Stencil::star(1).theoretical_ai(), 0.5);
  EXPECT_DOUBLE_EQ(Stencil::star(2).theoretical_ai(), 0.9375);
  EXPECT_DOUBLE_EQ(Stencil::star(3).theoretical_ai(), 1.375);
  EXPECT_DOUBLE_EQ(Stencil::star(4).theoretical_ai(), 1.8125);
  EXPECT_DOUBLE_EQ(Stencil::cube(1).theoretical_ai(), 1.875);
  EXPECT_DOUBLE_EQ(Stencil::cube(2).theoretical_ai(), 8.375);
}

TEST(TheoreticalAi, FlopsAreSymmetryMinimal) {
  // (points - 1) adds + (groups) multiplies.
  EXPECT_EQ(Stencil::star(1).flops_per_point(), 8);
  EXPECT_EQ(Stencil::cube(2).flops_per_point(), 134);
  EXPECT_EQ(Stencil::star(2).min_flops({10, 10, 10}), 15000);
}

TEST(Stencil, SetCoefficient) {
  Stencil st = Stencil::star(1);
  st.set_coefficient("a0", -6.0);
  st.set_coefficient("a1", 1.0);
  EXPECT_EQ(st.coefficient_values().at("a0"), -6.0);
  EXPECT_EQ(st.coefficient_values().at("a1"), 1.0);
  EXPECT_THROW(st.set_coefficient("nope", 0.0), Error);
}

TEST(Stencil, CustomShapeClassification) {
  Index i(0), j(1), k(2);
  Grid in("in", 3), out("out", 3);
  ConstRef c("c");
  // An asymmetric 2-point stencil is Custom.
  const Stencil st = Stencil::from_program(
      out(i, j, k).assign(c * in(i + 1, j, k) + c * in(i, j, k)));
  EXPECT_EQ(st.shape(), Shape::Custom);
}

// --- Reference evaluator ------------------------------------------------------

TEST(Reference, ConstantFieldGivesCoefficientSum) {
  Stencil st = Stencil::star(1);
  st.set_coefficient("a0", 2.0);
  st.set_coefficient("a1", 0.5);
  HostGrid in({8, 8, 8}, {1, 1, 1}), out({8, 8, 8}, {0, 0, 0});
  for (bElem& v : in.raw()) v = 3.0;
  apply_reference(st, in, out);
  // 3 * (2.0 + 6 * 0.5) = 15 everywhere.
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(out.at(i, j, k), 15.0);
}

TEST(Reference, SymmetricStencilAnnihilatesLinearField) {
  // A symmetric stencil with zero coefficient sum has zero action on any
  // affine field (discrete derivative property).
  Stencil st = Stencil::star(2);
  st.set_coefficient("a0", -1.0);
  st.set_coefficient("a1", 1.0 / 12.0);
  st.set_coefficient("a2", 1.0 / 12.0);
  HostGrid in({8, 8, 8}, {2, 2, 2}), out({8, 8, 8}, {0, 0, 0});
  in.fill_linear(1.0, 3.0, 7.0);
  apply_reference(st, in, out);
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 8; ++i)
        EXPECT_NEAR(out.at(i, j, k), 0.0, 1e-9) << i << "," << j << "," << k;
}

TEST(Reference, RequiresGhostAtLeastRadius) {
  HostGrid in({8, 8, 8}, {1, 1, 1}), out({8, 8, 8}, {0, 0, 0});
  EXPECT_THROW(apply_reference(Stencil::star(2), in, out), Error);
}

TEST(Reference, MaxRelError) {
  HostGrid a({4, 4, 4}, {0, 0, 0}), b({4, 4, 4}, {0, 0, 0});
  for (bElem& v : a.raw()) v = 2.0;
  for (bElem& v : b.raw()) v = 2.0;
  EXPECT_EQ(max_rel_error(a, b), 0.0);
  b.at(1, 2, 3) = 2.5;
  EXPECT_NEAR(max_rel_error(a, b), 0.5 / 2.5, 1e-12);
  HostGrid c({5, 4, 4}, {0, 0, 0});
  EXPECT_THROW(max_rel_error(a, c), Error);
}

}  // namespace
}  // namespace bricksim::dsl
