// Cross-cutting property tests of the whole simulation stack:
// determinism, domain-scaling linearity, conservation-style counter
// invariants, and cross-platform consistency rules.
#include <gtest/gtest.h>

#include "harness/harness.h"
#include "model/launcher.h"
#include "profiler/profiler.h"

namespace bricksim {
namespace {

using codegen::Variant;

TEST(Properties, RunsAreBitwiseDeterministic) {
  const auto pf = model::paper_platforms().front();
  const model::Launcher launcher({64, 64, 64});
  const auto st = dsl::Stencil::cube(1);
  for (Variant v : {Variant::Array, Variant::BricksCodegen}) {
    const auto a = launcher.run(st, v, pf);
    const auto b = launcher.run(st, v, pf);
    EXPECT_EQ(a.report.traffic.hbm_total(), b.report.traffic.hbm_total());
    EXPECT_EQ(a.report.traffic.l1_total(), b.report.traffic.l1_total());
    EXPECT_EQ(a.report.warp_insts, b.report.warp_insts);
    EXPECT_DOUBLE_EQ(a.report.seconds, b.report.seconds);
  }
}

/// Counters must scale (roughly) linearly with domain volume: 8x the
/// domain, ~8x the compulsory traffic and instructions.
class ScalingLinearity : public testing::TestWithParam<Variant> {};

TEST_P(ScalingLinearity, CountersScaleWithVolume) {
  const auto pf = model::paper_platforms().front();
  const auto st = dsl::Stencil::star(2);
  const auto small = model::Launcher({64, 64, 64}).run(st, GetParam(), pf);
  const auto big = model::Launcher({128, 128, 128}).run(st, GetParam(), pf);

  const double bytes_ratio =
      static_cast<double>(big.report.traffic.hbm_total()) /
      static_cast<double>(small.report.traffic.hbm_total());
  // 8x +- ghost/surface effects.
  EXPECT_GT(bytes_ratio, 6.0);
  EXPECT_LT(bytes_ratio, 10.0);

  const double insts_ratio = static_cast<double>(big.report.warp_insts) /
                             static_cast<double>(small.report.warp_insts);
  EXPECT_NEAR(insts_ratio, 8.0, 0.01);  // exactly 8x blocks, same program

  const double flops_ratio =
      static_cast<double>(big.report.flops_executed) /
      static_cast<double>(small.report.flops_executed);
  EXPECT_NEAR(flops_ratio, 8.0, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Variants, ScalingLinearity,
                         testing::Values(Variant::Array,
                                         Variant::ArrayCodegen,
                                         Variant::BricksCodegen),
                         [](const auto& info) {
                           std::string s =
                               codegen::variant_name(info.param);
                           for (char& c : s)
                             if (!isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return s;
                         });

TEST(Properties, HbmBytesAtLeastCompulsory) {
  // No kernel can move fewer bytes than one read + one write per point.
  const Vec3 domain{128, 64, 64};
  const model::Launcher launcher(domain);
  const auto compulsory = metrics::compulsory_bytes(domain);
  for (const auto& pf : model::paper_platforms())
    for (const auto& st :
         {dsl::Stencil::star(1), dsl::Stencil::cube(2)})
      for (Variant v :
           {Variant::Array, Variant::ArrayCodegen, Variant::BricksCodegen}) {
        const auto r = launcher.run(st, v, pf);
        EXPECT_GE(r.report.traffic.hbm_total(), compulsory)
            << pf.label() << " " << st.name() << " "
            << codegen::variant_name(v);
      }
}

TEST(Properties, L1BytesAtLeastHbmPayload) {
  // Everything that reaches HBM was requested through the L1 first (the
  // register file cannot bypass it in this machine).
  const model::Launcher launcher({128, 64, 64});
  const auto pf = model::paper_platforms().front();
  for (Variant v :
       {Variant::Array, Variant::ArrayCodegen, Variant::BricksCodegen}) {
    const auto r = launcher.run(dsl::Stencil::star(4), v, pf);
    // Compare against the compulsory payload (page-locality overhead is
    // bookkeeping on the HBM side, not data the L1 saw).
    EXPECT_GE(r.report.traffic.l1_total(),
              metrics::compulsory_bytes({128, 64, 64}))
        << codegen::variant_name(v);
  }
}

TEST(Properties, TimeNeverBelowBandwidthBound) {
  // seconds >= HBM bytes / theoretical peak bandwidth, always.
  const model::Launcher launcher({128, 64, 64});
  for (const auto& pf : model::paper_platforms()) {
    const auto r = launcher.run(dsl::Stencil::star(1),
                                Variant::BricksCodegen, pf);
    const double floor =
        static_cast<double>(r.report.traffic.hbm_total()) /
        pf.gpu.peak_hbm_bytes_per_sec();
    EXPECT_GE(r.report.seconds, floor * 0.999) << pf.label();
  }
}

TEST(Properties, WiderStencilsNeverReduceTraffic) {
  // Monotonicity: growing the stencil radius cannot reduce bytes moved.
  const model::Launcher launcher({128, 64, 64});
  const auto pf = model::paper_platforms().front();
  std::uint64_t prev = 0;
  for (int r = 1; r <= 4; ++r) {
    const auto res =
        launcher.run(dsl::Stencil::star(r), Variant::BricksCodegen, pf);
    EXPECT_GE(res.report.traffic.hbm_total(), prev) << "radius " << r;
    prev = res.report.traffic.hbm_total();
  }
}

TEST(Properties, MeasurementFieldsConsistent) {
  const auto pf = model::paper_platforms().front();
  const model::Launcher launcher({64, 64, 64});
  for (const auto& st : dsl::Stencil::paper_catalog()) {
    const auto m = profiler::run_and_measure(
        launcher, st, Variant::BricksCodegen, pf);
    // ai == flops_normalized / hbm_bytes by definition.
    EXPECT_NEAR(m.ai,
                static_cast<double>(m.flops_normalized) / m.hbm_bytes,
                1e-12);
    // gflops == flops_normalized / seconds / 1e9.
    EXPECT_NEAR(m.gflops,
                static_cast<double>(m.flops_normalized) / m.seconds / 1e9,
                1e-6 * m.gflops);
    // Executed >= normalised (scatter reassociation can only add FLOPs).
    EXPECT_GE(m.flops_executed,
              static_cast<std::uint64_t>(m.flops_normalized));
  }
}

}  // namespace
}  // namespace bricksim
