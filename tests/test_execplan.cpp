// A/B equivalence tests for the two SIMT execution engines: the pre-decoded
// ExecPlan replay (Engine::Plan, the default) against the legacy interpreter
// (Engine::Interp).  The plan engine promises BIT-IDENTICAL KernelReports --
// every traffic counter, every timing double, every functional value -- so
// these tests compare with operator== (exact), never with tolerances, across
// the full paper stencil catalog, all lowering variants and platforms, both
// execution modes, and several --jobs counts.
#include <gtest/gtest.h>

#include "common/grid.h"
#include "common/rng.h"
#include "dsl/stencil.h"
#include "harness/harness.h"
#include "model/launcher.h"
#include "model/progmodel.h"
#include "profiler/profiler.h"
#include "simt/execplan.h"
#include "simt/machine.h"

namespace bricksim {
namespace {

using codegen::Variant;

// --- PageSet (the note_dram_page replacement) --------------------------------

TEST(ExecPlanPageSet, DeduplicatesAndCounts) {
  simt::PageSet s;
  EXPECT_EQ(s.size(), 0u);
  s.insert(42);
  s.insert(7);
  s.insert(42);  // duplicate
  s.insert(1ull << 62);
  s.insert(7);  // duplicate
  EXPECT_EQ(s.size(), 3u);
  s.clear();
  EXPECT_EQ(s.size(), 0u);
  s.insert(5);
  EXPECT_EQ(s.size(), 1u);
}

// --- Machine-level equivalence ----------------------------------------------

simt::Kernel make_kernel(const ir::Program& prog, Vec3 blocks,
                         std::vector<double>& in, std::vector<double>& out,
                         Vec3& padded) {
  const Vec3 interior{blocks.i * 8, blocks.j * 4, blocks.k * 4};
  padded = {interior.i + 16, interior.j + 16, interior.k + 16};
  in.assign(static_cast<std::size_t>(padded.volume()), 0.0);
  out.assign(static_cast<std::size_t>(padded.volume()), 0.0);
  SplitMix64 rng(17);
  for (double& v : in) v = rng.next_double(-1, 1);

  simt::DeviceAllocator dev(128);
  simt::GridBinding gi;
  gi.padded = padded;
  gi.ghost = {8, 8, 8};
  gi.device_base = dev.allocate(in.size() * kElemBytes);
  gi.data = in.data();
  gi.len = in.size();
  simt::GridBinding go = gi;
  go.device_base = dev.allocate(out.size() * kElemBytes);
  go.data = out.data();

  simt::Kernel k;
  k.program = &prog;
  k.blocks = blocks;
  k.tile = {8, 4, 4};
  k.grids = {gi, go};
  for (int n = 0; n < prog.num_constants(); ++n)
    k.constants.push_back(0.5 + n);
  return k;
}

ir::MemRef aref(int grid, int di, int dj = 0, int dk = 0) {
  ir::MemRef m;
  m.grid = grid;
  m.space = ir::Space::Array;
  m.di = di;
  m.dj = dj;
  m.dk = dk;
  m.vectorized = true;
  return m;
}

ir::MemRef spill_ref(int slot) {
  ir::MemRef m;
  m.space = ir::Space::Spill;
  m.slot = slot;
  return m;
}

/// A program exercising every opcode, including a spill round-trip and an
/// unaligned (di=3) vectorized load (the MI250X L2-bypass candidate).
ir::Program everything_program() {
  ir::Program p(8);
  p.add_constant("c0");
  p.add_constant("c1");
  const int a = p.load(aref(0, 0));
  const int b = p.load(aref(0, 3));  // unaligned: bypass candidate
  const int c = p.load(aref(0, 8));
  p.store(a, spill_ref(0));
  const int al = p.align(a, c, 3);
  const int s1 = p.add(a, b);
  const int s2 = p.mul(s1, al);
  const int s3 = p.fma(s2, b, a);
  const int s4 = p.mul_const(s3, 0);
  const int s5 = p.fma_const(s4, al, 1);
  const int sp = p.load(spill_ref(0));
  const int s6 = p.add(s5, sp);
  const int k0 = p.set_const(0);
  const int z = p.zero();
  const int s7 = p.add(s6, k0);
  const int s8 = p.add(s7, z);
  p.int_ops(5);
  p.store(s8, aref(1, 0));
  p.set_num_spill_slots(1);
  return p;
}

struct EngineRun {
  simt::KernelReport rep;
  std::vector<double> out;
};

EngineRun run_engine(simt::Engine eng, const arch::GpuArch& arch,
                     simt::ExecMode mode, bool bypass, bool rmw,
                     int read_streams) {
  static const ir::Program prog = everything_program();
  std::vector<double> in, out;
  Vec3 padded;
  simt::Kernel k = make_kernel(prog, {2, 2, 2}, in, out, padded);
  k.bypass_l2_unaligned_vloads = bypass;
  k.streaming_stores = !rmw;
  k.read_streams = read_streams;
  k.shuffle_cost_mult = 1.5;
  k.extra_cycles_per_load = 2.0;
  if (mode == simt::ExecMode::CountersOnly)
    for (auto& g : k.grids) g.data = nullptr;
  simt::Machine m(arch);
  return {m.run(k, mode, eng), std::move(out)};
}

class ExecPlanMachine
    : public testing::TestWithParam<std::tuple<simt::ExecMode, bool, bool>> {};

TEST_P(ExecPlanMachine, ReportsBitIdenticalToInterp) {
  const auto [mode, bypass, rmw] = GetParam();
  for (const arch::GpuArch& base :
       {arch::make_a100(), arch::make_mi250x_gcd(), arch::make_pvc_stack()}) {
    arch::GpuArch arch = base;
    arch.num_cores = 4;
    const auto plan = run_engine(simt::Engine::Plan, arch, mode, bypass, rmw,
                                 /*read_streams=*/2);
    const auto interp = run_engine(simt::Engine::Interp, arch, mode, bypass,
                                   rmw, /*read_streams=*/2);
    EXPECT_TRUE(plan.rep == interp.rep) << arch.name;
    EXPECT_EQ(plan.out, interp.out) << arch.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndQuirks, ExecPlanMachine,
    testing::Combine(testing::Values(simt::ExecMode::Functional,
                                     simt::ExecMode::CountersOnly),
                     testing::Bool(),   // bypass_l2_unaligned_vloads
                     testing::Bool()),  // rmw stores
    [](const auto& info) {
      std::string s = std::get<0>(info.param) == simt::ExecMode::Functional
                          ? "functional"
                          : "counters";
      if (std::get<1>(info.param)) s += "_bypass";
      if (std::get<2>(info.param)) s += "_rmw";
      return s;
    });

TEST(ExecPlanMachine, ValidatesKernelShapeLikeInterp) {
  ir::Program p(8);
  p.store(p.load(aref(0, 0)), aref(1, 0));
  std::vector<double> in, out;
  Vec3 padded;
  for (const auto eng : {simt::Engine::Plan, simt::Engine::Interp}) {
    simt::Machine m(arch::make_a100());
    simt::Kernel bad_tile = make_kernel(p, {1, 1, 1}, in, out, padded);
    bad_tile.tile.i = 12;  // not a multiple of W=8
    EXPECT_THROW(m.run(bad_tile, simt::ExecMode::CountersOnly, eng), Error);

    simt::Kernel no_prog = make_kernel(p, {1, 1, 1}, in, out, padded);
    no_prog.program = nullptr;
    EXPECT_THROW(m.run(no_prog, simt::ExecMode::CountersOnly, eng), Error);

    simt::Kernel no_grids = make_kernel(p, {1, 1, 1}, in, out, padded);
    no_grids.grids.clear();
    EXPECT_THROW(m.run(no_grids, simt::ExecMode::CountersOnly, eng), Error);
  }
}

// --- Launcher-level equivalence over the paper catalog ----------------------

class ExecPlanCatalog : public testing::TestWithParam<std::string> {};

TEST_P(ExecPlanCatalog, CountersBitIdenticalAcrossCatalog) {
  // Every (stencil, variant) of this platform at 64^3, counters-only: the
  // full production path (codegen -> regalloc -> binding -> machine) must
  // produce field-identical reports under both engines.
  const auto platforms = model::paper_platforms();
  const model::Platform* pf = nullptr;
  for (const auto& p : platforms)
    if (p.label() == GetParam()) pf = &p;
  ASSERT_NE(pf, nullptr);

  model::Launcher plan({64, 64, 64}), interp({64, 64, 64});
  plan.set_engine(simt::Engine::Plan);
  interp.set_engine(simt::Engine::Interp);
  for (const auto& st : dsl::Stencil::paper_catalog()) {
    for (const auto v :
         {Variant::Array, Variant::ArrayCodegen, Variant::BricksCodegen}) {
      const auto a = plan.run(st, v, *pf);
      const auto b = interp.run(st, v, *pf);
      EXPECT_TRUE(a.report == b.report)
          << st.name() << " " << codegen::variant_name(v);
      EXPECT_EQ(a.normalized_flops, b.normalized_flops) << st.name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperPlatforms, ExecPlanCatalog,
    testing::ValuesIn([] {
      std::vector<std::string> labels;
      for (const auto& p : model::paper_platforms())
        labels.push_back(p.label());
      return labels;
    }()),
    [](const auto& info) {
      std::string s = info.param;
      for (char& c : s)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return s;
    });

TEST(ExecPlanCatalog, FunctionalOutputsBitIdentical) {
  // Functional runs must agree on the output grid values exactly, not just
  // the counters: same arithmetic, same evaluation order.
  const auto st = dsl::Stencil::paper_catalog()[1];  // 13pt star, radius 2
  const Vec3 ghost{st.radius(), st.radius(), st.radius()};
  for (const auto& pf : model::paper_platforms()) {
    const Vec3 domain{2 * pf.gpu.simd_width, 8, 8};
    for (const auto v :
         {Variant::Array, Variant::ArrayCodegen, Variant::BricksCodegen}) {
      HostGrid in(domain, ghost);
      SplitMix64 rng(23);
      in.fill_random(rng);
      HostGrid out_plan(domain, {0, 0, 0}), out_interp(domain, {0, 0, 0});
      model::Launcher plan(domain), interp(domain);
      plan.set_engine(simt::Engine::Plan);
      interp.set_engine(simt::Engine::Interp);
      const auto a = plan.run_functional(st, v, pf, in, out_plan);
      const auto b = interp.run_functional(st, v, pf, in, out_interp);
      EXPECT_TRUE(a.report == b.report)
          << pf.label() << " " << codegen::variant_name(v);
      for (int k = 0; k < domain.k; ++k)
        for (int j = 0; j < domain.j; ++j)
          for (int i = 0; i < domain.i; ++i)
            ASSERT_EQ(out_plan.at(i, j, k), out_interp.at(i, j, k))
                << pf.label() << " " << codegen::variant_name(v) << " ("
                << i << "," << j << "," << k << ")";
    }
  }
}

// --- Sweep-level equivalence (engines x jobs) -------------------------------

TEST(ExecPlanSweep, MeasurementsBitIdenticalAcrossEnginesAndJobs) {
  harness::SweepConfig base;
  base.domain = {64, 64, 64};
  base.platforms = {model::paper_platforms()[0]};
  base.check_mode = analysis::CheckMode::Off;

  harness::SweepConfig plan1 = base, plan8 = base, interp1 = base;
  plan1.jobs = 1;
  plan8.jobs = 8;
  interp1.jobs = 1;
  interp1.engine = simt::Engine::Interp;

  const auto a = harness::run_sweep(plan1);
  const auto b = harness::run_sweep(plan8);
  const auto c = harness::run_sweep(interp1);
  ASSERT_EQ(a.measurements.size(), b.measurements.size());
  ASSERT_EQ(a.measurements.size(), c.measurements.size());
  for (std::size_t n = 0; n < a.measurements.size(); ++n) {
    EXPECT_TRUE(a.measurements[n] == b.measurements[n])
        << a.measurements[n].stencil << " " << a.measurements[n].variant
        << " (jobs 1 vs 8)";
    EXPECT_TRUE(a.measurements[n] == c.measurements[n])
        << a.measurements[n].stencil << " " << a.measurements[n].variant
        << " (plan vs interp)";
  }
}

}  // namespace
}  // namespace bricksim
