// Unit tests for the SIMT machine: address resolution, traffic accounting,
// functional semantics of every op (especially VAlign), block scheduling,
// the counters-only fast path, and the timing decomposition.
#include <gtest/gtest.h>

#include "common/error.h"
#include "arch/arch.h"
#include "common/rng.h"
#include "ir/program.h"
#include "simt/machine.h"

namespace bricksim::simt {
namespace {

arch::GpuArch test_arch(int cores = 4) {
  arch::GpuArch a = arch::make_a100();
  a.num_cores = cores;
  a.simd_width = 8;
  a.page_open_bytes = 0;  // unit tests reason about exact byte counts
  // 64B lines so an 8-lane (64B) row is exactly one full line.
  a.l1.line_bytes = 64;
  a.l1.sector_bytes = 32;
  a.l2.line_bytes = 64;
  a.l2.sector_bytes = 32;
  return a;
}

ir::MemRef aref(int grid, int di, int dj = 0, int dk = 0) {
  ir::MemRef m;
  m.grid = grid;
  m.space = ir::Space::Array;
  m.di = di;
  m.dj = dj;
  m.dk = dk;
  return m;
}

/// in/out grids with ghost 8 around a blocks*(8,4,4) interior.
struct Harness {
  explicit Harness(Vec3 blocks, const ir::Program& prog)
      : interior{blocks.i * 8, blocks.j * 4, blocks.k * 4},
        padded{interior.i + 16, interior.j + 16, interior.k + 16},
        in(static_cast<std::size_t>(padded.volume())),
        out(static_cast<std::size_t>(padded.volume())) {
    SplitMix64 rng(3);
    for (double& v : in) v = rng.next_double(-1, 1);
    DeviceAllocator dev(128);
    GridBinding gi;
    gi.padded = padded;
    gi.ghost = {8, 8, 8};
    gi.device_base = dev.allocate(in.size() * kElemBytes);
    gi.data = in.data();
    gi.len = in.size();
    GridBinding go = gi;
    go.device_base = dev.allocate(out.size() * kElemBytes);
    go.data = out.data();
    kernel.program = &prog;
    kernel.blocks = blocks;
    kernel.tile = {8, 4, 4};
    kernel.grids = {gi, go};
    for (int n = 0; n < prog.num_constants(); ++n)
      kernel.constants.push_back(1.0 + n);
  }

  double out_at(int i, int j, int k) const {
    return out[linear_index({i + 8, j + 8, k + 8}, padded)];
  }
  double in_at(int i, int j, int k) const {
    return in[linear_index({i + 8, j + 8, k + 8}, padded)];
  }

  Vec3 interior, padded;
  std::vector<double> in, out;
  Kernel kernel;
};

TEST(Machine, CopyKernelMovesCompulsoryBytes) {
  ir::Program p(8);
  for (int vk = 0; vk < 4; ++vk)
    for (int vj = 0; vj < 4; ++vj) {
      const int v = p.load(aref(0, 0, vj, vk));
      p.store(v, aref(1, 0, vj, vk));
    }
  Harness h({2, 2, 2}, p);
  Machine m(test_arch());
  const KernelReport rep = m.run(h.kernel, ExecMode::Functional);

  EXPECT_EQ(rep.blocks_run, 8u);
  // Functional copy correct:
  for (int k = 0; k < h.interior.k; ++k)
    for (int j = 0; j < h.interior.j; ++j)
      for (int i = 0; i < h.interior.i; ++i)
        ASSERT_EQ(h.out_at(i, j, k), h.in_at(i, j, k));
  // Each tile row is exactly one 64B line; compulsory traffic only.
  EXPECT_EQ(rep.traffic.l1_read_bytes, 8u * 16 * 64);
  EXPECT_EQ(rep.traffic.hbm_read_bytes, 8u * 16 * 64);
  EXPECT_EQ(rep.flops_executed, 0u);
}

TEST(Machine, AlignComputesShiftedWindow) {
  // out row = window into concat(in[di=0], in[di=8]) at shift 3 == in[i+3].
  ir::Program p(8);
  const int lo = p.load(aref(0, 0));
  const int hi = p.load(aref(0, 8));
  const int sh = p.align(lo, hi, 3);
  p.store(sh, aref(1, 0));
  Harness h({1, 1, 1}, p);
  Machine m(test_arch());
  m.run(h.kernel, ExecMode::Functional);
  for (int l = 0; l < 8; ++l)
    EXPECT_EQ(h.out_at(l, 0, 0), h.in_at(l + 3, 0, 0)) << l;
}

TEST(Machine, AlignShiftZeroAndFullWidth) {
  ir::Program p(8);
  const int lo = p.load(aref(0, 0));
  const int hi = p.load(aref(0, 8));
  p.store(p.align(lo, hi, 0), aref(1, 0, 0, 0));
  p.store(p.align(lo, hi, 8), aref(1, 0, 1, 0));
  Harness h({1, 1, 1}, p);
  Machine m(test_arch());
  m.run(h.kernel, ExecMode::Functional);
  for (int l = 0; l < 8; ++l) {
    EXPECT_EQ(h.out_at(l, 0, 0), h.in_at(l, 0, 0));
    EXPECT_EQ(h.out_at(l, 1, 0), h.in_at(l + 8, 0, 0));
  }
}

TEST(Machine, ArithmeticOpsAndConstants) {
  ir::Program p(8);
  const int c0 = p.add_constant("c0");  // bound to 1.0
  const int c1 = p.add_constant("c1");  // bound to 2.0
  const int v = p.load(aref(0, 0));
  const int w = p.load(aref(0, 0, 1, 0));
  p.store(p.add(v, w), aref(1, 0, 0, 0));              // v + w
  p.store(p.mul(v, w), aref(1, 0, 1, 0));              // v * w
  p.store(p.fma(v, w, v), aref(1, 0, 2, 0));           // v*w + v
  p.store(p.mul_const(v, c1), aref(1, 0, 3, 0));       // 2v
  p.store(p.fma_const(v, w, c1), aref(1, 0, 0, 1));    // v + 2w
  p.store(p.set_const(c0), aref(1, 0, 1, 1));          // 1.0
  p.store(p.zero(), aref(1, 0, 2, 1));                 // 0.0
  Harness h({1, 1, 1}, p);
  Machine m(test_arch());
  const auto rep = m.run(h.kernel, ExecMode::Functional);
  for (int l = 0; l < 8; ++l) {
    const double v0 = h.in_at(l, 0, 0), w0 = h.in_at(l, 1, 0);
    EXPECT_DOUBLE_EQ(h.out_at(l, 0, 0), v0 + w0);
    EXPECT_DOUBLE_EQ(h.out_at(l, 1, 0), v0 * w0);
    EXPECT_DOUBLE_EQ(h.out_at(l, 2, 0), v0 * w0 + v0);
    EXPECT_DOUBLE_EQ(h.out_at(l, 3, 0), 2.0 * v0);
    EXPECT_DOUBLE_EQ(h.out_at(l, 0, 1), v0 + 2.0 * w0);
    EXPECT_DOUBLE_EQ(h.out_at(l, 1, 1), 1.0);
    EXPECT_DOUBLE_EQ(h.out_at(l, 2, 1), 0.0);
  }
  // add(8) + mul(8) + fma(16) + mulc(8) + fmac(16) per lane over 8 lanes.
  EXPECT_EQ(rep.flops_executed, 8u * (1 + 1 + 2 + 1 + 2));
}

TEST(Machine, CountersOnlyMatchesFunctionalCounters) {
  // The fast path must produce byte-identical traffic and issue counters.
  ir::Program p(8);
  const int c = p.add_constant("c");
  for (int vj = 0; vj < 4; ++vj) {
    const int v = p.load(aref(0, -1, vj, 0));
    const int w = p.load(aref(0, 1, vj, 0));
    const int s = p.align(v, w, 2);
    p.int_ops(3);
    p.store(p.fma_const(s, v, c), aref(1, 0, vj, 0));
  }
  Harness h1({2, 2, 2}, p), h2({2, 2, 2}, p);
  Machine m1(test_arch()), m2(test_arch());
  const auto fu = m1.run(h1.kernel, ExecMode::Functional);
  h2.kernel.grids[0].data = nullptr;  // counters-only needs no data
  h2.kernel.grids[1].data = nullptr;
  const auto co = m2.run(h2.kernel, ExecMode::CountersOnly);

  EXPECT_EQ(fu.traffic.hbm_read_bytes, co.traffic.hbm_read_bytes);
  EXPECT_EQ(fu.traffic.hbm_write_bytes, co.traffic.hbm_write_bytes);
  EXPECT_EQ(fu.traffic.l1_total(), co.traffic.l1_total());
  EXPECT_EQ(fu.flops_executed, co.flops_executed);
  EXPECT_EQ(fu.warp_insts, co.warp_insts);
  EXPECT_EQ(fu.blocks_run, co.blocks_run);
  EXPECT_DOUBLE_EQ(fu.seconds, co.seconds);
}

TEST(Machine, SpillTrafficStaysOnChip) {
  ir::Program p(8);
  p.set_num_spill_slots(1);
  const int v = p.load(aref(0, 0));
  ir::Inst st;
  st.op = ir::Op::VStore;
  st.a = v;
  st.mem.space = ir::Space::Spill;
  st.mem.slot = 0;
  p.insts().push_back(st);
  ir::Inst ld;
  ld.op = ir::Op::VLoad;
  ld.dst = p.new_vreg();
  ld.mem.space = ir::Space::Spill;
  ld.mem.slot = 0;
  p.insts().push_back(ld);
  p.store(ld.dst, aref(1, 0));

  Harness h({1, 1, 1}, p);
  Machine m(test_arch());
  const auto rep = m.run(h.kernel, ExecMode::Functional);
  EXPECT_EQ(rep.spill_bytes, 2u * 8 * kElemBytes);
  // Spilled value survives the round trip.
  for (int l = 0; l < 8; ++l) EXPECT_EQ(h.out_at(l, 0, 0), h.in_at(l, 0, 0));
  // Spills never reach HBM (read side: only the compulsory input line).
  EXPECT_LE(rep.traffic.hbm_read_bytes, 256u);
}

TEST(Machine, TimingDecompositionIsMaxOfComponents) {
  ir::Program p(8);
  const int v = p.load(aref(0, 0));
  p.store(v, aref(1, 0));
  Harness h({4, 4, 4}, p);
  Machine m(test_arch());
  const auto rep = m.run(h.kernel, ExecMode::CountersOnly);
  EXPECT_GT(rep.seconds, 0.0);
  EXPECT_DOUBLE_EQ(rep.seconds,
                   std::max({rep.t_hbm, rep.t_l2, rep.t_issue}));
  EXPECT_STREQ(rep.bottleneck(),
               rep.seconds == rep.t_hbm ? "HBM"
               : rep.seconds == rep.t_l2 ? "L2" : "issue");
}

TEST(Machine, ExtraCyclesPerLoadSlowKernelsDown) {
  ir::Program p(8);
  for (int n = 0; n < 16; ++n) {
    const int v = p.load(aref(0, 0, n % 4, n / 4));
    p.store(v, aref(1, 0, n % 4, n / 4));
  }
  Harness fast({4, 4, 4}, p), slow({4, 4, 4}, p);
  slow.kernel.extra_cycles_per_load = 400;
  Machine m1(test_arch()), m2(test_arch());
  const auto f = m1.run(fast.kernel, ExecMode::CountersOnly);
  const auto s = m2.run(slow.kernel, ExecMode::CountersOnly);
  EXPECT_GT(s.seconds, f.seconds);
  EXPECT_EQ(s.traffic.hbm_total(), f.traffic.hbm_total());
}

TEST(Machine, RmwStoresAddReadTraffic) {
  ir::Program p(8);
  for (int vj = 0; vj < 4; ++vj)
    p.store(p.zero(), aref(1, 0, vj, 0));
  Harness wc({2, 2, 2}, p), rmw({2, 2, 2}, p);
  rmw.kernel.streaming_stores = false;
  Machine m1(test_arch()), m2(test_arch());
  const auto a = m1.run(wc.kernel, ExecMode::CountersOnly);
  const auto b = m2.run(rmw.kernel, ExecMode::CountersOnly);
  EXPECT_GT(b.traffic.hbm_read_bytes, a.traffic.hbm_read_bytes);
  EXPECT_EQ(a.traffic.hbm_write_bytes, b.traffic.hbm_write_bytes);
}

TEST(Machine, PageLocalityCountsDistinctRowsOncePerBlock) {
  // One block loads the SAME logical row twice (di=0 and di=8: two distinct
  // 64B lines, both compulsory DRAM misses) and streams one output row.
  // The page-locality model must count 2 distinct activation granules per
  // block -- the input row deduplicated to one, plus the output row -- not
  // 3, under both engines.
  ir::Program p(8);
  const int lo = p.load(aref(0, 0));
  const int hi = p.load(aref(0, 8));
  p.store(p.add(lo, hi), aref(1, 0));
  for (const auto eng : {Engine::Plan, Engine::Interp}) {
    Harness base({1, 1, 1}, p), charged({1, 1, 1}, p);
    base.kernel.read_streams = 2;
    charged.kernel.read_streams = 2;
    arch::GpuArch a0 = test_arch(), a100b = test_arch();
    a100b.page_open_bytes = 100;
    Machine m0(a0), m1(a100b);
    const auto rep0 = m0.run(base.kernel, ExecMode::CountersOnly, eng);
    const auto rep1 = m1.run(charged.kernel, ExecMode::CountersOnly, eng);
    EXPECT_EQ(rep1.traffic.hbm_read_bytes - rep0.traffic.hbm_read_bytes,
              2u * 100)
        << (eng == Engine::Plan ? "plan" : "interp");
  }
}

TEST(Machine, PageLocalityExemptsSingleStreamKernels) {
  ir::Program p(8);
  p.store(p.load(aref(0, 0)), aref(1, 0));
  arch::GpuArch a = test_arch();
  a.page_open_bytes = 100;
  for (const auto eng : {Engine::Plan, Engine::Interp}) {
    Harness single({1, 1, 1}, p), multi({1, 1, 1}, p);
    single.kernel.read_streams = 1;
    multi.kernel.read_streams = 2;
    Machine m1(a), m2(a);
    const auto s = m1.run(single.kernel, ExecMode::CountersOnly, eng);
    const auto m = m2.run(multi.kernel, ExecMode::CountersOnly, eng);
    EXPECT_EQ(m.traffic.hbm_read_bytes - s.traffic.hbm_read_bytes, 2u * 100);
  }
}

TEST(Machine, ValidatesKernelShape) {
  ir::Program p(8);
  p.store(p.zero(), aref(1, 0));
  Harness h({1, 1, 1}, p);
  Machine m(test_arch());

  Kernel bad = h.kernel;
  bad.tile = {12, 4, 4};  // not a multiple of the vector width
  EXPECT_THROW(m.run(bad, ExecMode::CountersOnly), Error);

  bad = h.kernel;
  bad.grids.clear();
  EXPECT_THROW(m.run(bad, ExecMode::CountersOnly), Error);

  bad = h.kernel;
  bad.blocks = {0, 1, 1};
  EXPECT_THROW(m.run(bad, ExecMode::CountersOnly), Error);
}

TEST(DeviceAllocator, NonOverlappingAlignedRanges) {
  DeviceAllocator dev(128);
  const auto a = dev.allocate(1000);
  const auto b = dev.allocate(1);
  const auto c = dev.allocate(4096);
  EXPECT_EQ(a % 4096, 0u);
  EXPECT_EQ(b % 4096, 0u);
  EXPECT_GE(b, a + 1000);
  EXPECT_GE(c, b + 1);
  EXPECT_NE(a, 0u);  // page zero unmapped
}

}  // namespace
}  // namespace bricksim::simt
