// Randomised property testing: arbitrary custom stencils (random offset
// sets, random coefficient grouping, radius 1..4) are built through the DSL,
// lowered by every variant, executed on the SIMT machine and compared with
// the scalar reference.  This exercises the code-generator paths far beyond
// the six symmetric paper stencils: asymmetric shapes, sparse planes,
// single-sided offsets, and coefficient groups of unequal size.
#include <gtest/gtest.h>

#include <set>

#include "common/grid.h"
#include "common/rng.h"
#include "dsl/reference.h"
#include "model/launcher.h"

namespace bricksim {
namespace {

/// Builds a random custom stencil with `points` distinct offsets within
/// `radius` and `groups` coefficient names, via the DSL expression path.
dsl::Stencil random_stencil(SplitMix64& rng, int radius, int points,
                            int groups) {
  dsl::Index i(0), j(1), k(2);
  dsl::Grid in("in", 3), out("out", 3);

  std::set<Vec3> offsets;
  offsets.insert({0, 0, 0});  // keep the centre so the stencil is sensible
  while (static_cast<int>(offsets.size()) < points) {
    const int span = 2 * radius + 1;
    offsets.insert({static_cast<int>(rng.next_below(span)) - radius,
                    static_cast<int>(rng.next_below(span)) - radius,
                    static_cast<int>(rng.next_below(span)) - radius});
  }

  std::vector<dsl::ConstRef> coeffs;
  for (int g = 0; g < groups; ++g)
    coeffs.emplace_back("c" + std::to_string(g));

  dsl::Expr sum;
  for (const Vec3& o : offsets) {
    const auto& c = coeffs[rng.next_below(groups)];
    dsl::Expr term = c * in(i + o.i, j + o.j, k + o.k);
    sum = sum.valid() ? sum + term : term;
  }
  dsl::Stencil st =
      dsl::Stencil::from_program(out(i, j, k).assign(sum));
  // Randomise the coefficient values too.
  for (const auto& g : st.groups())
    st.set_coefficient(g.coeff, rng.next_double(-1.0, 1.0));
  return st;
}

class FuzzStencils : public testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzStencils, AllVariantsMatchReference) {
  SplitMix64 rng(GetParam());
  const int radius = 1 + static_cast<int>(rng.next_below(4));
  const int points =
      2 + static_cast<int>(rng.next_below(30));  // 2..31 points
  const int groups = 1 + static_cast<int>(rng.next_below(5));
  const dsl::Stencil st = random_stencil(rng, radius, points, groups);
  // Random draws occasionally land on a canonical shape (seed 24 produces
  // an exact 27-point cube) -- any classification is fine here.

  const auto pf = model::paper_platforms().front();  // A100, W = 32
  const Vec3 domain{64, 8, 8};
  const Vec3 ghost{radius, radius, radius};
  HostGrid in(domain, ghost), expect(domain, {0, 0, 0});
  in.fill_random(rng);
  dsl::apply_reference(st, in, expect);

  const model::Launcher launcher(domain);
  for (const auto variant :
       {codegen::Variant::Array, codegen::Variant::ArrayCodegen,
        codegen::Variant::BricksCodegen}) {
    HostGrid got(domain, {0, 0, 0});
    // Exercise scatter on roughly half of the codegen runs.
    codegen::Options opts;
    if (variant != codegen::Variant::Array && GetParam() % 2 == 0)
      opts.force_scatter = true;
    const auto res =
        launcher.run_functional(st, variant, pf, in, got, opts);
    const double err = dsl::max_rel_error(expect, got);
    if (res.used_scatter)
      EXPECT_LE(err, 1e-12)
          << codegen::variant_name(variant) << " seed " << GetParam();
    else
      EXPECT_EQ(err, 0.0)
          << codegen::variant_name(variant) << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzStencils,
                         testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace bricksim
