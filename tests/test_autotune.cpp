// Tests for parametric brick shapes and the brick-shape autotuner:
// candidate enumeration, winner selection, and -- the critical property --
// functional correctness of kernels generated at every non-default shape.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/grid.h"
#include "common/rng.h"
#include "dsl/reference.h"
#include "harness/autotune.h"

namespace bricksim::harness {
namespace {

TEST(CandidateShapes, RespectRadiusAndBlockLimit) {
  for (const auto& [tj, tk] : candidate_shapes(2, 32)) {
    EXPECT_GE(tj, 2);
    EXPECT_GE(tk, 2);
    EXPECT_LE(32 * tj * tk, 1024);
  }
  // Radius 4 eliminates everything below 4.
  for (const auto& [tj, tk] : candidate_shapes(4, 32)) {
    EXPECT_GE(tj, 4);
    EXPECT_GE(tk, 4);
  }
  // Wave 64: at most 16 rows per block.
  for (const auto& [tj, tk] : candidate_shapes(1, 64))
    EXPECT_LE(tj * tk, 16);
  // The paper default is always a candidate for its stencils.
  const auto shapes = candidate_shapes(4, 64);
  EXPECT_NE(std::find(shapes.begin(), shapes.end(), std::make_pair(4, 4)),
            shapes.end());
}

TEST(Autotune, BestIsTheMinimumAndContainsDefault) {
  const auto pf = model::metric_platforms().front();  // A100/CUDA
  const auto tuned = autotune_brick_shape(
      dsl::Stencil::star(2), codegen::Variant::BricksCodegen, pf,
      {64, 32, 32});
  EXPECT_GE(tuned.entries.size(), 4u);
  bool has_default = false;
  for (const auto& e : tuned.entries) {
    EXPECT_GE(e.seconds, tuned.best.seconds);
    EXPECT_GT(e.gflops, 0);
    if (e.tile_j == 4 && e.tile_k == 4) has_default = true;
  }
  EXPECT_TRUE(has_default);
  const auto opts = tuned.best_options();
  EXPECT_EQ(opts.tile_j, tuned.best.tile_j);
  EXPECT_EQ(opts.tile_k, tuned.best.tile_k);
}

TEST(Autotune, RejectsIndivisibleDomain) {
  const auto pf = model::metric_platforms().front();
  // 36 is not divisible by the tile_j = 8 candidates.
  EXPECT_THROW(autotune_brick_shape(dsl::Stencil::star(1),
                                    codegen::Variant::BricksCodegen, pf,
                                    {64, 36, 32}),
               Error);
}

/// Property: every candidate shape produces a functionally-correct kernel
/// for every variant (the tile-shape generalisation must not break any
/// lowering path).
struct ShapeCase {
  int radius;
  codegen::Variant variant;
  int tj, tk;
};

class TileShapeCorrectness : public testing::TestWithParam<ShapeCase> {};

TEST_P(TileShapeCorrectness, MatchesReference) {
  const auto& c = GetParam();
  const dsl::Stencil st = c.radius <= 0 ? dsl::Stencil::cube(-c.radius)
                                        : dsl::Stencil::star(c.radius);
  const auto pf = model::paper_platforms().front();  // A100, W = 32

  const Vec3 domain{64, 16, 16};
  ASSERT_EQ(domain.j % c.tj, 0);
  ASSERT_EQ(domain.k % c.tk, 0);
  const Vec3 ghost{st.radius(), st.radius(), st.radius()};
  HostGrid in(domain, ghost), expect(domain, {0, 0, 0}),
      got(domain, {0, 0, 0});
  SplitMix64 rng(7);
  in.fill_random(rng);
  dsl::apply_reference(st, in, expect);

  codegen::Options opts;
  opts.tile_j = c.tj;
  opts.tile_k = c.tk;
  const model::Launcher launcher(domain);
  const auto res =
      launcher.run_functional(st, c.variant, pf, in, got, opts);
  const double err = dsl::max_rel_error(expect, got);
  if (res.used_scatter)
    EXPECT_LE(err, 1e-12);
  else
    EXPECT_EQ(err, 0.0);
}

std::vector<ShapeCase> shape_cases() {
  std::vector<ShapeCase> cases;
  for (const auto& [tj, tk] : {std::pair{1, 1}, {2, 2}, {2, 4}, {4, 2},
                               {8, 8}, {2, 8}, {8, 2}, {4, 8}})
    for (codegen::Variant v :
         {codegen::Variant::Array, codegen::Variant::ArrayCodegen,
          codegen::Variant::BricksCodegen}) {
      if (tj >= 1 && tk >= 1) cases.push_back({1, v, tj, tk});  // 7pt
      if (tj >= 2 && tk >= 2) cases.push_back({-2, v, tj, tk});  // 125pt
      if (tj >= 4 && tk >= 4) cases.push_back({4, v, tj, tk});  // 25pt
    }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TileShapeCorrectness, testing::ValuesIn(shape_cases()),
    [](const testing::TestParamInfo<ShapeCase>& info) {
      const auto& c = info.param;
      std::string s = (c.radius > 0 ? "star" + std::to_string(c.radius)
                                    : "cube" + std::to_string(-c.radius)) +
                      "_" + codegen::variant_name(c.variant) + "_" +
                      std::to_string(c.tj) + "x" + std::to_string(c.tk);
      for (char& ch : s)
        if (!isalnum(static_cast<unsigned char>(ch))) ch = '_';
      return s;
    });

/// Vector folding in i (brick i extent = f * W): every variant must stay
/// functionally correct with folded bricks, and i-shifts inside a folded
/// row must NOT touch neighbouring bricks (fewer adjacency loads).
class FoldedBricks : public testing::TestWithParam<codegen::Variant> {};

TEST_P(FoldedBricks, CorrectAtFoldTwo) {
  const auto pf = model::paper_platforms().front();  // A100, W = 32
  const Vec3 domain{128, 16, 16};
  for (const auto& st : {dsl::Stencil::star(2), dsl::Stencil::cube(2)}) {
    const Vec3 ghost{st.radius(), st.radius(), st.radius()};
    HostGrid in(domain, ghost), expect(domain, {0, 0, 0}),
        got(domain, {0, 0, 0});
    SplitMix64 rng(31);
    in.fill_random(rng);
    dsl::apply_reference(st, in, expect);

    codegen::Options opts;
    opts.tile_i_vectors = 2;
    const model::Launcher launcher(domain);
    const auto res =
        launcher.run_functional(st, GetParam(), pf, in, got, opts);
    const double err = dsl::max_rel_error(expect, got);
    if (res.used_scatter)
      EXPECT_LE(err, 1e-12) << st.name();
    else
      EXPECT_EQ(err, 0.0) << st.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, FoldedBricks,
                         testing::Values(codegen::Variant::Array,
                                         codegen::Variant::ArrayCodegen,
                                         codegen::Variant::BricksCodegen),
                         [](const auto& info) {
                           std::string s = codegen::variant_name(info.param);
                           for (char& c : s)
                             if (!isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return s;
                         });

TEST(FoldedBricksShape, FoldingReducesNeighborLoads) {
  // A radius-2 star at f = 2: interior shifts resolve within the brick, so
  // fewer loads go through the i-neighbour adjacency than at f = 1
  // (normalised per output row).
  const auto st = dsl::Stencil::star(2);
  auto nbr_loads_per_row = [&](int f) {
    codegen::Options opts;
    opts.tile_i_vectors = f;
    const auto k = codegen::lower(st, codegen::Variant::BricksCodegen, 32,
                                  opts);
    int nbr = 0;
    for (const auto& in : k.program.insts())
      if (in.op == ir::Op::VLoad && in.mem.space == ir::Space::Brick &&
          in.mem.nbr_di != 0)
        ++nbr;
    return static_cast<double>(nbr) / (16.0 * f);
  };
  EXPECT_LT(nbr_loads_per_row(2), nbr_loads_per_row(1));
}

/// "Ordering" axis of BrickLib autotuning: the kernels must be oblivious to
/// the brick storage order, and a permuted order must not change data
/// movement much (bricks stay page-contiguous individually).
TEST(BrickOrdering, ShuffledStorageOrderIsTransparent) {
  const auto pf = model::paper_platforms().front();
  const Vec3 domain{64, 16, 16};
  const dsl::Stencil st = dsl::Stencil::star(2);
  HostGrid in(domain, {2, 2, 2}), natural(domain, {0, 0, 0}),
      shuffled(domain, {0, 0, 0});
  SplitMix64 rng(21);
  in.fill_random(rng);

  const model::Launcher launcher(domain);
  const auto a = launcher.run_functional(
      st, codegen::Variant::BricksCodegen, pf, in, natural);
  codegen::Options opts;
  opts.shuffled_brick_order = true;
  opts.brick_order_seed = 1234;
  const auto b = launcher.run_functional(
      st, codegen::Variant::BricksCodegen, pf, in, shuffled, opts);

  EXPECT_EQ(dsl::max_rel_error(natural, shuffled), 0.0);
  // Same instruction stream; traffic may differ through cache effects but
  // not wildly (each brick remains one contiguous page).
  EXPECT_EQ(a.report.warp_insts, b.report.warp_insts);
  const double ratio = static_cast<double>(b.report.traffic.hbm_total()) /
                       static_cast<double>(a.report.traffic.hbm_total());
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.5);
}

}  // namespace
}  // namespace bricksim::harness
