// Unit and integration tests for analysis::brickcheck: seeded-bug programs
// must each yield their exact diagnostic, and every lowered paper kernel
// must come out clean.
#include <gtest/gtest.h>

#include "analysis/brickcheck.h"
#include "common/error.h"
#include "dsl/stencil.h"
#include "harness/harness.h"
#include "model/launcher.h"
#include "model/progmodel.h"
#include "profiler/profiler.h"

namespace bricksim::analysis {
namespace {

constexpr int kW = 8;

ir::MemRef array_ref(int grid, int di, int dj, int dk,
                     bool vectorized = false) {
  ir::MemRef m;
  m.grid = grid;
  m.space = ir::Space::Array;
  m.di = di;
  m.dj = dj;
  m.dk = dk;
  m.vectorized = vectorized;
  return m;
}

ir::MemRef brick_ref(int grid, int ndi, int ndj, int ndk, int vi, int vj,
                     int vk) {
  ir::MemRef m;
  m.grid = grid;
  m.space = ir::Space::Brick;
  m.nbr_di = ndi;
  m.nbr_dj = ndj;
  m.nbr_dk = ndk;
  m.vi = vi;
  m.vj = vj;
  m.vk = vk;
  m.vectorized = true;
  return m;
}

ir::MemRef spill_ref(int slot) {
  ir::MemRef m;
  m.space = ir::Space::Spill;
  m.slot = slot;
  return m;
}

/// A 2x2x2-block launch over (kW, 4, 4) tiles with ghost-1 padded arrays.
LaunchGeom array_geom() {
  LaunchGeom geom;
  geom.blocks = {2, 2, 2};
  geom.tile = {kW, 4, 4};
  for (int g = 0; g < 2; ++g) {
    GridGeom gg;
    gg.layout = ir::Space::Array;
    gg.ghost = {1, 1, 1};
    gg.padded = {2 * kW + 2, 2 * 4 + 2, 2 * 4 + 2};
    geom.grids.push_back(gg);
  }
  return geom;
}

LaunchGeom brick_geom() {
  LaunchGeom geom;
  geom.blocks = {2, 2, 2};
  geom.tile = {kW, 4, 4};
  for (int g = 0; g < 2; ++g) {
    GridGeom gg;
    gg.layout = ir::Space::Brick;
    gg.brick_dims = {kW, 4, 4};
    geom.grids.push_back(gg);
  }
  return geom;
}

/// In-bounds store of an in-bounds load: the clean baseline every seeded
/// bug below perturbs.
ir::Program clean_program() {
  ir::Program p(kW);
  const int v = p.load(array_ref(0, 0, 0, 0));
  p.store(v, array_ref(1, 0, 0, 0));
  return p;
}

TEST(Brickcheck, CleanProgramHasNoDiagnostics) {
  const ir::Program p = clean_program();
  const Report r = check(p, array_geom());
  EXPECT_TRUE(r.clean()) << r.to_string();
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.stats.programs, 1);
  EXPECT_EQ(r.stats.insts, 2);
  EXPECT_EQ(r.stats.errors, 0);
  EXPECT_EQ(r.stats.warnings, 0);
}

TEST(Brickcheck, OobArrayRefBeforeBuffer) {
  ir::Program p(kW);
  const int v = p.load(array_ref(0, 0, -2, 0));  // ghost is only 1 deep
  p.store(v, array_ref(1, 0, 0, 0));
  const Report r = check(p, array_geom());
  ASSERT_EQ(r.diags.size(), 1u) << r.to_string();
  const Diagnostic& d = r.diags[0];
  EXPECT_EQ(d.check, Check::Bounds);
  EXPECT_EQ(d.severity, Severity::Error);
  EXPECT_EQ(d.inst, 0);
  EXPECT_NE(d.message.find("before the padded buffer"), std::string::npos)
      << d.message;
}

TEST(Brickcheck, OobArrayRefPastPaddedExtent) {
  ir::Program p(kW);
  // Lane window [hi, hi + W) at the last block ends past padded.i.
  const int v = p.load(array_ref(0, kW + 1, 0, 0));
  p.store(v, array_ref(1, 0, 0, 0));
  const Report r = check(p, array_geom());
  ASSERT_EQ(r.diags.size(), 1u) << r.to_string();
  EXPECT_EQ(r.diags[0].check, Check::Bounds);
  EXPECT_EQ(r.diags[0].severity, Severity::Error);
  EXPECT_EQ(r.diags[0].inst, 0);
  EXPECT_NE(r.diags[0].message.find("past the padded extent"),
            std::string::npos)
      << r.diags[0].message;
}

TEST(Brickcheck, BrickDisplacementOutOfRange) {
  ir::Program p(kW);
  const int v = p.load(brick_ref(0, 0, 2, 0, 0, 0, 0));  // dj=2 illegal
  p.store(v, brick_ref(1, 0, 0, 0, 0, 0, 0));
  const Report r = check(p, brick_geom());
  ASSERT_EQ(r.diags.size(), 1u) << r.to_string();
  EXPECT_EQ(r.diags[0].check, Check::Bounds);
  EXPECT_EQ(r.diags[0].severity, Severity::Error);
  EXPECT_EQ(r.diags[0].inst, 0);
  EXPECT_NE(r.diags[0].message.find("outside {-1,0,+1}"), std::string::npos)
      << r.diags[0].message;
}

TEST(Brickcheck, BrickRowOutsideBrickDims) {
  ir::Program p(kW);
  const int v = p.load(brick_ref(0, 0, 0, 0, /*vi=*/1, /*vj=*/0, /*vk=*/0));
  p.store(v, brick_ref(1, 0, 0, 0, 0, 0, 5));  // vk=5 >= BK=4
  const Report r = check(p, brick_geom());
  ASSERT_EQ(r.diags.size(), 2u) << r.to_string();
  EXPECT_EQ(r.diags[0].inst, 0);  // vi=1 needs a 2-vector row; bricks hold 1
  EXPECT_NE(r.diags[0].message.find("vector"), std::string::npos);
  EXPECT_EQ(r.diags[1].inst, 1);
  EXPECT_NE(r.diags[1].message.find("vk=5"), std::string::npos);
  for (const Diagnostic& d : r.diags) {
    EXPECT_EQ(d.check, Check::Bounds);
    EXPECT_EQ(d.severity, Severity::Error);
  }
}

TEST(Brickcheck, ReadBeforeDefRegister) {
  ir::Program p(kW);
  const int z = p.zero();  // v0, defined
  const int undef = p.new_vreg();
  ir::Inst in;
  in.op = ir::Op::VAddV;
  in.dst = z;
  in.a = undef;
  in.b = z;
  p.insts().push_back(in);
  const Report r = check_program(p);
  ASSERT_EQ(r.diags.size(), 1u) << r.to_string();
  EXPECT_EQ(r.diags[0].check, Check::Dataflow);
  EXPECT_EQ(r.diags[0].severity, Severity::Error);
  EXPECT_EQ(r.diags[0].inst, 1);
  EXPECT_NE(r.diags[0].message.find("read of register v1 before any "
                                    "definition"),
            std::string::npos)
      << r.diags[0].message;
}

TEST(Brickcheck, OverlappingBlockWriteRanges) {
  ir::Program p(kW);
  const int v = p.load(array_ref(0, 0, 0, 0));
  p.store(v, array_ref(1, 0, 4, 0));  // dj == tile_j: next block's row
  const Report r = check(p, array_geom());
  ASSERT_EQ(r.diags.size(), 1u) << r.to_string();
  const Diagnostic& d = r.diags[0];
  EXPECT_EQ(d.check, Check::Race);
  EXPECT_EQ(d.severity, Severity::Error);
  EXPECT_EQ(d.inst, 1);
  EXPECT_NE(d.message.find("concurrent blocks' write ranges overlap"),
            std::string::npos)
      << d.message;
}

TEST(Brickcheck, NeighbourBrickStoreIsARace) {
  ir::Program p(kW);
  const int v = p.load(brick_ref(0, 0, 0, 0, 0, 0, 0));
  p.store(v, brick_ref(1, 1, 0, 0, 0, 0, 0));  // writes the i+1 brick
  const Report r = check(p, brick_geom());
  ASSERT_EQ(r.diags.size(), 1u) << r.to_string();
  EXPECT_EQ(r.diags[0].check, Check::Race);
  EXPECT_EQ(r.diags[0].severity, Severity::Error);
  EXPECT_EQ(r.diags[0].inst, 1);
  EXPECT_NE(r.diags[0].message.find("targets a neighbouring brick"),
            std::string::npos)
      << r.diags[0].message;
}

TEST(Brickcheck, ReadingOwnOutputAcrossTilesIsARace) {
  ir::Program p(kW);
  const int v = p.load(array_ref(1, 0, -1, 0));  // grid 1 is also written
  p.store(v, array_ref(1, 0, 0, 0));
  const Report r = check(p, array_geom());
  const Diagnostic* race = nullptr;
  for (const Diagnostic& d : r.diags)
    if (d.check == Check::Race) race = &d;
  ASSERT_NE(race, nullptr) << r.to_string();
  EXPECT_EQ(race->severity, Severity::Error);
  EXPECT_NE(race->message.find("observes a concurrent block's stores"),
            std::string::npos)
      << race->message;
}

TEST(Brickcheck, InPlaceKernelWarnsOnce) {
  ir::Program p(kW);
  const int a = p.load(array_ref(1, 0, 0, 0));
  const int b = p.load(array_ref(1, 0, 1, 0));
  p.store(p.add(a, b), array_ref(1, 0, 0, 0));
  const Report r = check(p, array_geom());
  ASSERT_EQ(r.diags.size(), 1u) << r.to_string();
  EXPECT_EQ(r.diags[0].check, Check::Race);
  EXPECT_EQ(r.diags[0].severity, Severity::Warning);
  EXPECT_NE(r.diags[0].message.find("in-place"), std::string::npos);
  EXPECT_TRUE(r.ok());  // warnings only
}

TEST(Brickcheck, MisalignedVectorizedLoadWhereAlignmentRequired) {
  ir::Program p(kW);
  const int v = p.load(array_ref(0, 1, 0, 0, /*vectorized=*/true));
  p.store(v, array_ref(1, 0, 0, 0));
  LaunchGeom geom = array_geom();
  geom.grids[0].ghost = {0, 0, 0};  // isolate di=1 as the misalignment
  geom.grids[0].padded = {3 * kW, 10, 10};  // roomy and W-aligned rows
  // Not required: the simulator models the unaligned access instead.
  EXPECT_TRUE(check(p, geom).clean());
  geom.require_aligned_vloads = true;
  const Report r = check(p, geom);
  ASSERT_EQ(r.diags.size(), 1u) << r.to_string();
  EXPECT_EQ(r.diags[0].check, Check::Alignment);
  EXPECT_EQ(r.diags[0].severity, Severity::Error);
  EXPECT_EQ(r.diags[0].inst, 0);
  EXPECT_NE(r.diags[0].message.find("requires naturally aligned"),
            std::string::npos)
      << r.diags[0].message;
}

TEST(Brickcheck, SpillSlotHygiene) {
  ir::Program p(kW);
  p.set_num_spill_slots(2);
  const int v = p.load(spill_ref(0));  // inst 0: read-before-write
  p.store(v, spill_ref(1));            // inst 1: first store to slot 1
  p.store(v, spill_ref(1));            // inst 2: double-spill, and dead
  const Report r = check_program(p);
  ASSERT_EQ(r.diags.size(), 3u) << r.to_string();
  EXPECT_EQ(r.diags[0].severity, Severity::Error);
  EXPECT_EQ(r.diags[0].inst, 0);
  EXPECT_NE(r.diags[0].message.find("read-before-write"), std::string::npos);
  EXPECT_EQ(r.diags[1].severity, Severity::Warning);
  EXPECT_EQ(r.diags[1].inst, 2);
  EXPECT_NE(r.diags[1].message.find("double-spill"), std::string::npos);
  EXPECT_EQ(r.diags[2].severity, Severity::Warning);
  EXPECT_EQ(r.diags[2].inst, 2);
  EXPECT_NE(r.diags[2].message.find("dead store"), std::string::npos);
  for (const Diagnostic& d : r.diags) EXPECT_EQ(d.check, Check::Dataflow);
}

TEST(Brickcheck, ModeParsingRoundTrips) {
  EXPECT_EQ(parse_check_mode("off"), CheckMode::Off);
  EXPECT_EQ(parse_check_mode("warn"), CheckMode::Warn);
  EXPECT_EQ(parse_check_mode("strict"), CheckMode::Strict);
  EXPECT_STREQ(check_mode_name(CheckMode::Strict), "strict");
  EXPECT_THROW(parse_check_mode("loose"), Error);
}

TEST(Brickcheck, EnforceStrictThrowsOnErrorsOnly) {
  ir::Program p(kW);
  const int v = p.load(array_ref(0, 0, -2, 0));
  p.store(v, array_ref(1, 0, 0, 0));
  const Report bad = check(p, array_geom());
  EXPECT_THROW(enforce(bad, CheckMode::Strict, "test"), Error);
  EXPECT_NO_THROW(enforce(bad, CheckMode::Warn, "test"));
  EXPECT_NO_THROW(enforce(bad, CheckMode::Off, "test"));
  const Report good = check(clean_program(), array_geom());
  EXPECT_NO_THROW(enforce(good, CheckMode::Strict, "test"));
}

TEST(Brickcheck, DiagnosticRenderingIsStable) {
  Diagnostic d{Check::Bounds, Severity::Error, 12, "boom"};
  EXPECT_EQ(d.to_string(), "error[bounds] inst 12: boom");
  d = {Check::Race, Severity::Warning, -1, "hm"};
  EXPECT_EQ(d.to_string(), "warning[race] program: hm");
}

TEST(Brickcheck, StatsAccumulate) {
  CheckStats a;
  a += check(clean_program(), array_geom()).stats;
  a += check(clean_program(), array_geom()).stats;
  EXPECT_EQ(a.programs, 2);
  EXPECT_EQ(a.insts, 4);
  EXPECT_EQ(a.errors, 0);
}

// --- The paper catalogue must be clean under every variant -------------------

TEST(BrickcheckSweep, PaperCatalogCleanAtCodegenTime) {
  for (const auto& st : dsl::Stencil::paper_catalog())
    for (const auto variant :
         {codegen::Variant::Array, codegen::Variant::ArrayCodegen,
          codegen::Variant::BricksCodegen}) {
      // lower() itself runs the post-emit gate (errors throw); re-check the
      // launch-free pass here and assert full cleanliness, warnings included.
      const codegen::LoweredKernel k = codegen::lower(st, variant, 32);
      const Report r = check_program(k.program);
      EXPECT_TRUE(r.clean())
          << st.name() << " / " << codegen::variant_name(variant) << ":\n"
          << r.to_string();
    }
}

TEST(BrickcheckSweep, PaperCatalogCleanOnEveryPlatformStrict) {
  model::Launcher launcher({64, 64, 64});
  launcher.set_check_mode(CheckMode::Strict);
  for (const auto& pf : model::paper_platforms())
    for (const auto& st : dsl::Stencil::paper_catalog())
      for (const auto variant :
           {codegen::Variant::Array, codegen::Variant::ArrayCodegen,
            codegen::Variant::BricksCodegen}) {
        const model::LaunchResult r =
            launcher.run(st, variant, pf);  // Strict: errors would throw
        EXPECT_EQ(r.check_stats.errors, 0)
            << st.name() << " / " << codegen::variant_name(variant) << " on "
            << pf.label();
        EXPECT_EQ(r.check_stats.warnings, 0)
            << st.name() << " / " << codegen::variant_name(variant) << " on "
            << pf.label();
        EXPECT_GT(r.check_stats.insts, 0);
      }
}

TEST(BrickcheckSweep, StatsFlowIntoMeasurementAndRollup) {
  model::Launcher launcher({64, 64, 64});
  launcher.set_check_mode(CheckMode::Strict);
  const auto pf = model::paper_platforms().front();
  const auto st = dsl::Stencil::paper_catalog().front();
  std::vector<profiler::Measurement> ms;
  ms.push_back(profiler::run_and_measure(launcher, st,
                                         codegen::Variant::BricksCodegen, pf));
  const metrics::CheckRollup roll = metrics::rollup_checks(ms);
  EXPECT_EQ(roll.kernels, 1);
  EXPECT_GT(roll.insts, 0);
  EXPECT_EQ(roll.errors, 0);
  EXPECT_EQ(roll.clean, 1);
  EXPECT_DOUBLE_EQ(roll.clean_fraction(), 1.0);
}

TEST(BrickcheckSweep, HarnessSummaryTableIsClean) {
  harness::SweepConfig config;
  config.domain = {64, 64, 64};
  config.platforms = {model::paper_platforms().front()};
  config.stencils = {dsl::Stencil::paper_catalog().front()};
  config.check_mode = CheckMode::Strict;
  const harness::Sweep sweep = harness::run_sweep(config);
  const Table t = harness::make_check_summary(sweep);
  // One row per platform plus the "all" total.
  ASSERT_EQ(t.num_rows(), 2u);
}

}  // namespace
}  // namespace bricksim::analysis
