// Structural tests for the experiment harness: sweep bookkeeping, lookup,
// CLI parsing, and the shape of every table/figure emitter.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/fault.h"
#include "harness/harness.h"

namespace bricksim::harness {
namespace {

/// One small shared sweep for the whole suite (A100 CUDA+SYCL only).
class HarnessTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    SweepConfig config;
    config.domain = {64, 64, 64};
    const auto all = model::paper_platforms();
    config.platforms = {all[0], all[2]};  // A100/CUDA, A100/SYCL
    sweep_ = new Sweep(run_sweep(config));
  }
  static void TearDownTestSuite() {
    delete sweep_;
    sweep_ = nullptr;
  }
  static const Sweep& sweep() { return *sweep_; }

 private:
  static Sweep* sweep_;
};

Sweep* HarnessTest::sweep_ = nullptr;

TEST_F(HarnessTest, SweepCoversEveryCombination) {
  // 6 stencils x 3 variants x 2 platforms.
  EXPECT_EQ(sweep().measurements.size(), 36u);
  EXPECT_EQ(sweep().rooflines.size(), 2u);
  for (const auto& m : sweep().measurements) {
    EXPECT_GT(m.seconds, 0) << m.stencil << " " << m.variant;
    EXPECT_GT(m.hbm_bytes, 0u);
    EXPECT_GT(m.gflops, 0);
  }
}

TEST_F(HarnessTest, FindAndSelect) {
  const auto* m = sweep().find("13pt", "bricks codegen", "A100/CUDA");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->stencil, "13pt");
  EXPECT_EQ(sweep().find("13pt", "bricks codegen", "PVC-Stack/SYCL"),
            nullptr);
  EXPECT_EQ(sweep().select("A100/CUDA").size(), 18u);
  EXPECT_EQ(sweep().select("A100/CUDA", "array").size(), 6u);
  EXPECT_TRUE(sweep().select("MI250X-GCD/HIP").empty());
}

TEST_F(HarnessTest, Fig3HasCeilingAndDataRows) {
  const Table t = make_fig3(sweep());
  // Per platform: 1 ceiling row + 18 data rows.
  EXPECT_EQ(t.num_rows(), 2u * 19);
  EXPECT_EQ(t.num_cols(), 6u);
}

TEST_F(HarnessTest, Fig4RowsPerMeasurement) {
  const Table t = make_fig4(sweep());
  EXPECT_EQ(t.num_rows(), 36u);
  // bricks codegen rows must show 1.0x against themselves.
  int bricks_rows = 0;
  for (std::size_t r = 0; r < t.num_rows(); ++r)
    if (t.row(r)[2] == "bricks codegen") {
      EXPECT_EQ(t.row(r)[4], "1.0x");
      ++bricks_rows;
    }
  EXPECT_EQ(bricks_rows, 12);
}

TEST_F(HarnessTest, Fig5CorrelatesAllPairs) {
  const CorrTables corr = make_fig5(sweep());
  EXPECT_EQ(corr.perf.num_rows(), 18u);
  EXPECT_EQ(corr.bytes.num_rows(), 18u);
  // Lower-bound column = 2 * 64^3 * 8 bytes = 0.0042 GB on every row.
  for (std::size_t r = 0; r < corr.bytes.num_rows(); ++r)
    EXPECT_EQ(corr.bytes.row(r)[4], corr.bytes.row(0)[4]);
}

TEST_F(HarnessTest, Table3And5ShapeAndParse) {
  for (const Table& t : {make_table3(sweep()), make_table5(sweep())}) {
    // Columns: stencil + (only A100/CUDA + A100/SYCL present) + P.
    EXPECT_EQ(t.num_cols(), 4u);
    EXPECT_EQ(t.num_rows(), 7u);  // 6 stencils + average
    EXPECT_EQ(t.row(6)[0], "average");
    // Every percentage parses and sits in (0, 100].
    for (std::size_t r = 0; r < 6; ++r)
      for (std::size_t c = 1; c < t.num_cols(); ++c) {
        const double v = std::stod(t.row(r)[c]);
        EXPECT_GT(v, 0.0) << r << "," << c;
        EXPECT_LE(v, 100.0) << r << "," << c;
      }
  }
}

TEST_F(HarnessTest, Fig7PotentialSpeedupAtLeastOne) {
  const Table t = make_fig7(sweep());
  EXPECT_EQ(t.num_rows(), 12u);  // 6 stencils x 2 platforms
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    const double s = std::stod(t.row(r)[4]);
    EXPECT_GE(s, 1.0) << "row " << r;
  }
}

TEST(HarnessStatic, Table1And2And4NeedNoSweep) {
  EXPECT_EQ(make_table1().num_rows(), 6u);
  const Table t2 = make_table2();
  EXPECT_EQ(t2.num_rows(), 6u);
  EXPECT_EQ(t2.row(0), (std::vector<std::string>{"star", "1", "7", "2"}));
  EXPECT_EQ(t2.row(5), (std::vector<std::string>{"cube", "2", "125", "10"}));
  const Table t4 = make_table4();
  EXPECT_EQ(t4.row(1)[2], "0.9375");
  EXPECT_EQ(t4.row(5)[2], "8.3750");
}

TEST(HarnessStatic, FindIndexMatchesLinearScan) {
  // A hand-assembled sweep (no build_index) uses the linear scan; after
  // build_index the indexed lookup must agree, including first-duplicate
  // semantics.
  Sweep sweep;
  profiler::Measurement a, b, other;
  a.stencil = b.stencil = "7pt";
  a.variant = b.variant = "bricks codegen";
  a.arch = b.arch = "A100";
  a.pm = b.pm = "CUDA";
  a.gflops = 1;
  b.gflops = 2;  // duplicate key; the scan returns the first
  other.stencil = "13pt";
  other.variant = "array";
  other.arch = "MI250X-GCD";
  other.pm = "HIP";
  sweep.measurements = {a, b, other};

  const auto* scanned = sweep.find("7pt", "bricks codegen", "A100/CUDA");
  ASSERT_NE(scanned, nullptr);
  EXPECT_EQ(scanned->gflops, 1);
  EXPECT_EQ(sweep.find("13pt", "array", "MI250X-GCD/HIP"), &sweep.measurements[2]);
  EXPECT_EQ(sweep.find("13pt", "array", "A100/CUDA"), nullptr);

  sweep.build_index();
  EXPECT_EQ(sweep.find("7pt", "bricks codegen", "A100/CUDA"),
            &sweep.measurements[0]);
  EXPECT_EQ(sweep.find("13pt", "array", "MI250X-GCD/HIP"),
            &sweep.measurements[2]);
  EXPECT_EQ(sweep.find("13pt", "array", "A100/CUDA"), nullptr);
}

TEST(HarnessStatic, CliConfig) {
  const char* argv[] = {"bench", "--n",       "128",       "--progress",
                        "--jobs=3", "--shards=2"};
  const std::optional<SweepConfig> parsed = sweep_config_from_cli(6, argv);
  ASSERT_TRUE(parsed.has_value());
  const SweepConfig& c = *parsed;
  EXPECT_EQ(c.domain, (Vec3{128, 128, 128}));
  EXPECT_TRUE(c.progress);
  EXPECT_EQ(c.jobs, 3);
  EXPECT_EQ(c.shards, 2);
  const char* bad[] = {"bench", "--n", "100"};
  EXPECT_THROW(sweep_config_from_cli(3, bad), UsageError);
  const char* bad_jobs[] = {"bench", "--jobs=0"};
  EXPECT_THROW(sweep_config_from_cli(2, bad_jobs), UsageError);
  const char* neg_jobs[] = {"bench", "--jobs=-1"};
  EXPECT_THROW(sweep_config_from_cli(2, neg_jobs), UsageError);
  const char* bad_shards[] = {"bench", "--shards=0"};
  EXPECT_THROW(sweep_config_from_cli(2, bad_shards), UsageError);
  const char* bad_n[] = {"bench", "--n=abc"};
  EXPECT_THROW(sweep_config_from_cli(2, bad_n), UsageError);
}

// --help must be "handled, nothing to run" (nullopt), not a process exit:
// library code owns no exits (the satellite that removed std::exit from
// sweep_config_from_cli).
TEST(HarnessStatic, CliHelpReturnsNullopt) {
  testing::internal::CaptureStdout();
  const char* argv[] = {"bench", "--help"};
  const std::optional<SweepConfig> parsed = sweep_config_from_cli(2, argv);
  const std::string help = testing::internal::GetCapturedStdout();
  EXPECT_FALSE(parsed.has_value());
  EXPECT_NE(help.find("--n"), std::string::npos);
  EXPECT_NE(help.find("--jobs"), std::string::npos);
}

// The parallel sweep executor's core promise: the same SweepConfig produces
// a bit-identical, identically ordered Sweep at every job count.  This test
// (and the threadpool suite) is what scripts/ci.sh runs under TSan.
TEST(HarnessParallel, SweepIsDeterministicAcrossJobCounts) {
  SweepConfig config;
  config.domain = {64, 64, 64};
  const auto all = model::paper_platforms();
  config.platforms = {all[0], all[2]};  // A100/CUDA, A100/SYCL
  config.jobs = 1;
  const Sweep serial = run_sweep(config);
  config.jobs = 8;
  const Sweep parallel = run_sweep(config);

  ASSERT_EQ(serial.measurements.size(), parallel.measurements.size());
  for (std::size_t n = 0; n < serial.measurements.size(); ++n) {
    const auto& a = serial.measurements[n];
    const auto& b = parallel.measurements[n];
    EXPECT_EQ(a.stencil, b.stencil) << "slot " << n;
    EXPECT_EQ(a.variant, b.variant) << "slot " << n;
    EXPECT_TRUE(a == b) << "slot " << n << ": " << a.stencil << "/"
                        << a.variant << " on " << a.arch << "/" << a.pm
                        << " differs between --jobs=1 and --jobs=8";
  }
  EXPECT_TRUE(serial.rooflines == parallel.rooflines);
}

// The --progress contract: "k/N" is a COMPLETION counter, incremented
// exactly once per task whether it succeeds or fails, so the last line of
// each stage always reads N/N -- even on a degraded sweep.  (The old
// pre-announcement style stalled at k < N when a config threw, which is
// exactly what this regression test arms fault injection against.)
TEST(HarnessParallel, ProgressCounterReachesNEvenWithFailures) {
  SweepConfig config;
  config.domain = {64, 64, 64};
  config.platforms = {model::paper_platforms().front()};  // A100/CUDA
  config.stencils = {dsl::Stencil::star(1), dsl::Stencil::cube(1)};
  config.variants = {codegen::Variant::Array,
                     codegen::Variant::BricksCodegen};
  config.jobs = 1;  // deterministic fault hit-counting
  config.progress = true;

  // Fail the roofline derivation and the second kernel launch.
  fault::ScopedPlan plan("roofline@1,launch@2");
  testing::internal::CaptureStderr();
  const Sweep sweep = run_sweep(config);
  const std::string err = testing::internal::GetCapturedStderr();

  ASSERT_EQ(sweep.failures.size(), 2u);  // one roofline + one launch hole

  std::vector<std::string> mixbench, configs;
  std::istringstream lines(err);
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("[sweep] ", 0) != 0) continue;
    (line.find(" mixbench ") != std::string::npos ? mixbench : configs)
        .push_back(line);
  }
  // Both stages count every task: 1 platform roofline, 2x2 configs.
  ASSERT_EQ(mixbench.size(), 1u) << err;
  EXPECT_NE(mixbench[0].find("1/1 mixbench"), std::string::npos) << err;
  EXPECT_NE(mixbench[0].find(" FAILED"), std::string::npos) << err;
  ASSERT_EQ(configs.size(), 4u) << err;
  int failed_lines = 0;
  for (int k = 0; k < 4; ++k) {
    // Serial execution: line k carries counter value k+1 of 4.
    const std::string want =
        std::to_string(k + 1) + "/4 " + config.platforms[0].label();
    EXPECT_NE(configs[k].find(want), std::string::npos) << configs[k];
    failed_lines += configs[k].find(" FAILED") != std::string::npos;
  }
  EXPECT_EQ(failed_lines, 1);
  EXPECT_NE(configs.back().find("4/4 "), std::string::npos) << err;
}

}  // namespace
}  // namespace bricksim::harness
