// Fault-tolerance properties of the sweep machinery (DESIGN.md "Fault
// tolerance"): cache corruption detection / quarantine / self-healing,
// per-config failure isolation in run_sweep, FAILED holes in the
// emitters, crash-safe resume from checkpoint shards, `bricksim doctor`,
// and the driver-level exit-code / run_summary contract -- all driven by
// the deterministic fault-injection framework (common/fault.h).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/fault.h"
#include "common/json.h"
#include "harness/cachefile.h"
#include "harness/doctor.h"
#include "harness/harness.h"
#include "harness/registry.h"
#include "harness/sweepcache.h"

namespace bricksim::harness {
namespace {

namespace fs = std::filesystem;

/// A fresh per-test cache/checkpoint directory under the gtest tmp root.
fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// The small sweep the whole suite uses: 1 platform x 2 stencils x
/// 2 variants at 64^3, serial so fault hit-counting is deterministic.
SweepConfig small_config() {
  SweepConfig config;
  config.domain = {64, 64, 64};
  config.platforms = {model::paper_platforms().front()};  // A100/CUDA
  config.stencils = {dsl::Stencil::star(1), dsl::Stencil::cube(1)};
  config.variants = {codegen::Variant::Array,
                     codegen::Variant::BricksCodegen};
  config.jobs = 1;
  return config;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void spit(const fs::path& p, const std::string& s) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out << s;
}

/// Flips one byte inside the *body* of a framed cache file (past the
/// header line), so the frame stays parseable but the checksum breaks.
void flip_body_byte(const fs::path& p) {
  std::string image = slurp(p);
  const std::size_t header_end = image.find('\n');
  ASSERT_NE(header_end, std::string::npos) << p;
  ASSERT_LT(header_end + 10, image.size()) << p;
  image[header_end + 10] ^= 0x1;
  spit(p, image);
}

bool table_has_cell(const Table& t, const std::string& cell) {
  for (std::size_t r = 0; r < t.num_rows(); ++r)
    for (const auto& c : t.row(r))
      if (c == cell) return true;
  return false;
}

std::string dump(const Sweep& sweep) { return sweep_to_json(sweep).dump(1); }

// --- Cache corruption: detect, quarantine, heal ------------------------------

TEST(CacheHealing, BitFlipIsQuarantinedThenResimulationHeals) {
  const fs::path dir = fresh_dir("robustness_bitflip");
  const SweepConfig config = small_config();
  const Sweep clean = run_sweep(config);
  store_cached_sweep(dir.string(), clean);

  const fs::path entry = cache_entry_path(dir.string(), config);
  ASSERT_TRUE(fs::exists(entry));
  {
    const auto loaded = load_cached_sweep(dir.string(), config);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(dump(*loaded), dump(clean));
  }

  flip_body_byte(entry);
  testing::internal::CaptureStderr();
  const long quarantined_before = quarantine_count();
  const auto damaged = load_cached_sweep(dir.string(), config);
  const std::string warning = testing::internal::GetCapturedStderr();
  // Never a silent miss: the damaged entry is moved aside with a warning.
  EXPECT_FALSE(damaged.has_value());
  EXPECT_EQ(quarantine_count(), quarantined_before + 1);
  EXPECT_NE(warning.find("quarantin"), std::string::npos) << warning;
  EXPECT_FALSE(fs::exists(entry));
  EXPECT_TRUE(fs::exists(entry.string() + ".corrupt"));

  // Self-healing: the next store/load cycle is bit-identical again.
  store_cached_sweep(dir.string(), clean);
  const auto healed = load_cached_sweep(dir.string(), config);
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(dump(*healed), dump(clean));
  fs::remove_all(dir);
}

TEST(CacheHealing, TruncationIsQuarantined) {
  const fs::path dir = fresh_dir("robustness_truncate");
  const SweepConfig config = small_config();
  store_cached_sweep(dir.string(), run_sweep(config));
  const fs::path entry = cache_entry_path(dir.string(), config);

  std::string image = slurp(entry);
  spit(entry, image.substr(0, image.size() / 2));
  testing::internal::CaptureStderr();
  EXPECT_FALSE(load_cached_sweep(dir.string(), config).has_value());
  testing::internal::GetCapturedStderr();
  EXPECT_TRUE(fs::exists(entry.string() + ".corrupt"));
  fs::remove_all(dir);
}

TEST(CacheHealing, ForeignFileIsASilentMissNotCorruption) {
  const fs::path dir = fresh_dir("robustness_foreign");
  const SweepConfig config = small_config();
  const fs::path entry = cache_entry_path(dir.string(), config);
  fs::create_directories(entry.parent_path());
  spit(entry, "{ not a framed cache file");

  testing::internal::CaptureStderr();
  const long quarantined_before = quarantine_count();
  EXPECT_FALSE(load_cached_sweep(dir.string(), config).has_value());
  const std::string warning = testing::internal::GetCapturedStderr();
  // Pre-checksum / unrelated files are not ours to judge: no warning, no
  // quarantine, file left in place.
  EXPECT_EQ(quarantine_count(), quarantined_before);
  EXPECT_EQ(warning, "");
  EXPECT_TRUE(fs::exists(entry));
  EXPECT_FALSE(fs::exists(entry.string() + ".corrupt"));
  fs::remove_all(dir);
}

TEST(CacheHealing, TornWriteFaultIsDetectedOnNextRead) {
  const fs::path dir = fresh_dir("robustness_torn");
  const SweepConfig config = small_config();
  const Sweep clean = run_sweep(config);
  {
    fault::ScopedPlan plan("cache.write.torn@1");
    store_cached_sweep(dir.string(), clean);
  }
  const fs::path entry = cache_entry_path(dir.string(), config);
  ASSERT_TRUE(fs::exists(entry));
  const std::string torn = slurp(entry);

  // The torn image is a proper prefix of a valid entry: the framing must
  // classify it as corrupt (quarantine), never replay it.
  testing::internal::CaptureStderr();
  const long quarantined_before = quarantine_count();
  EXPECT_FALSE(load_cached_sweep(dir.string(), config).has_value());
  testing::internal::GetCapturedStderr();
  EXPECT_EQ(quarantine_count(), quarantined_before + 1);
  EXPECT_FALSE(fs::exists(entry));

  store_cached_sweep(dir.string(), clean);
  const std::string whole = slurp(entry);
  EXPECT_LT(torn.size(), whole.size());
  EXPECT_EQ(whole.rfind(torn, 0), 0u);  // prefix: the write really tore
  fs::remove_all(dir);
}

TEST(CacheHealing, RenameFaultCostsTheEntryNotTheRun) {
  const fs::path dir = fresh_dir("robustness_rename");
  const SweepConfig config = small_config();
  const Sweep clean = run_sweep(config);
  testing::internal::CaptureStderr();
  {
    fault::ScopedPlan plan("cache.write.rename@1");
    // Persisting is an optimisation: the injected rename failure must
    // warn and drop the entry, never throw into the caller.
    EXPECT_NO_THROW(store_cached_sweep(dir.string(), clean));
  }
  const std::string warning = testing::internal::GetCapturedStderr();
  EXPECT_NE(warning, "");
  EXPECT_FALSE(fs::exists(cache_entry_path(dir.string(), config)));
  EXPECT_FALSE(load_cached_sweep(dir.string(), config).has_value());
  fs::remove_all(dir);
}

// --- Shard checkpoints -------------------------------------------------------

TEST(Shards, RoundTripMissAndCorruptionQuarantine) {
  const fs::path dir = fresh_dir("robustness_shards");
  const SweepConfig config = small_config();
  const Sweep clean = run_sweep(config);
  ASSERT_GE(clean.measurements.size(), 4u);

  store_shard(dir.string(), config, 3, clean.measurements[3]);
  const auto back = load_shard(dir.string(), config, 3);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, clean.measurements[3]);
  EXPECT_FALSE(load_shard(dir.string(), config, 2).has_value());

  const fs::path shard =
      fs::path(shard_dir(dir.string(), config)) / "shard-3.json";
  ASSERT_TRUE(fs::exists(shard));
  flip_body_byte(shard);
  testing::internal::CaptureStderr();
  EXPECT_FALSE(load_shard(dir.string(), config, 3).has_value());
  testing::internal::GetCapturedStderr();
  EXPECT_TRUE(fs::exists(shard.string() + ".corrupt"));

  // Roofline shards share the machinery.
  ASSERT_FALSE(clean.rooflines.empty());
  const auto& [label, rl] = *clean.rooflines.begin();
  store_roofline_shard(dir.string(), config, label, rl);
  const auto rl_back = load_roofline_shard(dir.string(), config, label);
  ASSERT_TRUE(rl_back.has_value());
  EXPECT_TRUE(*rl_back == rl);

  clear_shards(dir.string(), config);
  EXPECT_FALSE(fs::exists(shard_dir(dir.string(), config)));
  fs::remove_all(dir);
}

// --- Per-config failure isolation --------------------------------------------

TEST(FailureIsolation, OneFaultyConfigCostsOneHoleNotTheSweep) {
  const SweepConfig config = small_config();
  const Sweep clean = run_sweep(config);

  // Target exactly one config by its full launch-context identity.
  const std::string target = config.platforms[0].label() + " " +
                             config.stencils[0].name() + " bricks codegen";
  fault::ScopedPlan plan("launch[" + target + "]@1");
  const Sweep degraded = run_sweep(config);

  ASSERT_EQ(degraded.failures.size(), 1u);
  const FailureRecord& f = degraded.failures[0];
  EXPECT_EQ(f.platform, config.platforms[0].label());
  EXPECT_EQ(f.stencil, config.stencils[0].name());
  EXPECT_EQ(f.variant, "bricks codegen");
  EXPECT_EQ(f.site, "launch");
  EXPECT_NE(f.what.find("fault injected"), std::string::npos) << f.what;
  EXPECT_EQ(degraded.find_failure(f.stencil, f.variant, f.platform), &f);
  EXPECT_EQ(degraded.find_failure("13pt", f.variant, f.platform), nullptr);

  // The failed slot is a hole; every other slot is bit-identical to the
  // clean sweep, and the rooflines are untouched.
  ASSERT_EQ(degraded.measurements.size(), clean.measurements.size());
  // simulated counts attempts (failures included) plus the roofline.
  EXPECT_EQ(degraded.run_stats.simulated,
            static_cast<int>(clean.measurements.size()) + 1);
  int holes = 0;
  for (std::size_t n = 0; n < clean.measurements.size(); ++n) {
    if (degraded.measurements[n].stencil.empty()) {
      ++holes;
      EXPECT_EQ(clean.measurements[n].stencil, f.stencil);
      EXPECT_EQ(clean.measurements[n].variant, f.variant);
    } else {
      EXPECT_TRUE(degraded.measurements[n] == clean.measurements[n])
          << "slot " << n;
    }
  }
  EXPECT_EQ(holes, 1);
  EXPECT_TRUE(degraded.rooflines == clean.rooflines);
  EXPECT_EQ(degraded.find(f.stencil, f.variant, f.platform), nullptr);
  // Holes never leak into per-platform selections.
  for (const auto& m : degraded.select(f.platform))
    EXPECT_FALSE(m.stencil.empty());
}

TEST(FailureIsolation, RooflineFailureIsPerPlatformAndIsolated) {
  SweepConfig config = small_config();
  fault::ScopedPlan plan("roofline[" + config.platforms[0].label() + "]@1");
  std::vector<FailureRecord> failures;
  SweepRunStats stats;
  const auto rls = sweep_rooflines(config, &failures, &stats);
  EXPECT_TRUE(rls.empty());  // the only platform's roofline failed
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].platform, config.platforms[0].label());
  EXPECT_EQ(failures[0].stencil, "");
  EXPECT_EQ(failures[0].variant, "");
  EXPECT_EQ(failures[0].site, "roofline");
  EXPECT_EQ(stats.simulated, 1);

  // Without a collector the historical fail-fast contract holds.
  fault::ScopedPlan again("roofline@1");
  EXPECT_THROW(sweep_rooflines(config), Error);
}

TEST(FailureIsolation, EmittersRenderExplicitHoles) {
  const SweepConfig config = small_config();
  const Sweep clean = run_sweep(config);
  Sweep degraded;
  {
    fault::ScopedPlan plan("launch[" + config.platforms[0].label() + " " +
                           config.stencils[0].name() +
                           " bricks codegen]@1");
    degraded = run_sweep(config);
  }
  ASSERT_EQ(degraded.failures.size(), 1u);

  // Every sweep-consuming emitter completes on the degraded sweep and
  // renders the hole as an explicit FAILED cell; none appears on clean.
  const Table clean_tables[] = {make_fig3(clean), make_fig4(clean),
                                make_table3(clean), make_table5(clean),
                                make_fig7(clean)};
  for (const auto& t : clean_tables) EXPECT_FALSE(table_has_cell(t, "FAILED"));
  const Table degraded_tables[] = {make_fig3(degraded), make_fig4(degraded),
                                   make_table3(degraded),
                                   make_table5(degraded),
                                   make_fig7(degraded)};
  for (const auto& t : degraded_tables) {
    EXPECT_TRUE(table_has_cell(t, "FAILED"));
    // Partial tables keep the clean shape: a hole is a cell, not a
    // missing row.
    EXPECT_GT(t.num_rows(), 0u);
  }
  EXPECT_EQ(make_fig4(degraded).num_rows(), make_fig4(clean).num_rows());
  EXPECT_EQ(make_fig7(degraded).num_rows(), make_fig7(clean).num_rows());
}

// --- Crash-safe resume -------------------------------------------------------

TEST(Resume, ReplaysCheckpointShardsBitIdentically) {
  const fs::path dir = fresh_dir("robustness_resume");
  const SweepConfig reference_config = small_config();
  const Sweep reference = run_sweep(reference_config);  // never interrupted

  SweepConfig config = small_config();
  config.checkpoint_dir = dir.string();
  Sweep degraded;
  {
    fault::ScopedPlan plan("launch[" + config.platforms[0].label() + " " +
                           config.stencils[0].name() +
                           " bricks codegen]@1");
    degraded = run_sweep(config);
  }
  ASSERT_EQ(degraded.failures.size(), 1u);
  // Every completed config (and the roofline) left a shard; the failed
  // one did not.
  const int total = static_cast<int>(reference.measurements.size());
  EXPECT_EQ(degraded.run_stats.simulated, total + 1);  // + 1 roofline
  EXPECT_EQ(degraded.run_stats.checkpointed, total + 1 - 1);
  EXPECT_TRUE(fs::exists(shard_dir(dir.string(), config)));

  config.resume = true;
  const Sweep resumed = run_sweep(config);
  EXPECT_TRUE(resumed.failures.empty());
  // Only the hole was re-simulated; everything else replayed from shards,
  // and the result is bit-identical to the never-interrupted sweep.
  EXPECT_EQ(resumed.run_stats.resumed, total + 1 - 1);
  EXPECT_EQ(resumed.run_stats.simulated, 1);
  EXPECT_EQ(dump(resumed), dump(reference));
  fs::remove_all(dir);
}

TEST(Resume, CorruptShardIsQuarantinedAndResimulated) {
  const fs::path dir = fresh_dir("robustness_resume_corrupt");
  SweepConfig config = small_config();
  config.checkpoint_dir = dir.string();
  const Sweep reference = run_sweep(config);  // checkpoints everything

  const fs::path shard =
      fs::path(shard_dir(dir.string(), config)) / "shard-0.json";
  ASSERT_TRUE(fs::exists(shard));
  flip_body_byte(shard);

  config.resume = true;
  testing::internal::CaptureStderr();
  const Sweep resumed = run_sweep(config);
  testing::internal::GetCapturedStderr();
  EXPECT_TRUE(fs::exists(shard.string() + ".corrupt"));
  EXPECT_EQ(resumed.run_stats.simulated, 1);  // just the damaged shard
  EXPECT_EQ(dump(resumed), dump(reference));
  fs::remove_all(dir);
}

TEST(Resume, OffByDefaultIgnoresStaleShards) {
  const fs::path dir = fresh_dir("robustness_no_resume");
  SweepConfig config = small_config();
  config.checkpoint_dir = dir.string();
  const Sweep first = run_sweep(config);
  const int total = static_cast<int>(first.measurements.size()) + 1;
  EXPECT_EQ(first.run_stats.simulated, total);

  // Without --resume a fresh run must not trust leftover shards.
  const Sweep second = run_sweep(config);
  EXPECT_EQ(second.run_stats.resumed, 0);
  EXPECT_EQ(second.run_stats.simulated, total);
  EXPECT_EQ(dump(second), dump(first));
  fs::remove_all(dir);
}

// --- bricksim doctor ---------------------------------------------------------

TEST(Doctor, ScansClassifiesAndPrunes) {
  const fs::path dir = fresh_dir("robustness_doctor");
  const SweepConfig config = small_config();
  store_cached_sweep(dir.string(), run_sweep(config));
  const fs::path entry = cache_entry_path(dir.string(), config);

  // Healthy cache: everything ok, exit 0.
  {
    std::ostringstream os;
    EXPECT_EQ(run_doctor(dir.string(), false, os), 0);
    const DoctorReport report = doctor_scan(dir.string(), false);
    EXPECT_EQ(report.ok, 1);
    EXPECT_EQ(report.corrupt, 0);
  }

  // Damage the entry, add a pre-checksum (stale) file and a stray tmp.
  flip_body_byte(entry);
  spit(dir / "sweep-0123456789abcdef.json", "{\"schema\": 1}");
  spit(dir / "sweep-feedfacefeedface.json.tmp", "partial");
  {
    std::ostringstream os;
    EXPECT_EQ(run_doctor(dir.string(), false, os), 3);
    EXPECT_NE(os.str().find("corrupt"), std::string::npos) << os.str();
    const DoctorReport report = doctor_scan(dir.string(), false);
    EXPECT_EQ(report.corrupt, 1);
    EXPECT_GE(report.stale, 1);
  }

  // Prune: corrupt -> quarantined, stale/tmp deleted.
  {
    testing::internal::CaptureStderr();
    std::ostringstream os;
    run_doctor(dir.string(), true, os);
    testing::internal::GetCapturedStderr();
    EXPECT_FALSE(fs::exists(entry));
    EXPECT_TRUE(fs::exists(entry.string() + ".corrupt"));
    EXPECT_FALSE(fs::exists(dir / "sweep-0123456789abcdef.json"));
    EXPECT_FALSE(fs::exists(dir / "sweep-feedfacefeedface.json.tmp"));
    const DoctorReport after = doctor_scan(dir.string(), false);
    EXPECT_EQ(after.corrupt, 0);
    EXPECT_EQ(after.quarantined, 1);
  }

  // A second prune clears the quarantine; the cache is then empty-healthy.
  {
    std::ostringstream os;
    EXPECT_EQ(run_doctor(dir.string(), true, os), 0);
    EXPECT_FALSE(fs::exists(entry.string() + ".corrupt"));
  }
  fs::remove_all(dir);
}

TEST(Doctor, EmptyOrMissingCacheIsHealthy) {
  const fs::path dir =
      fs::path(testing::TempDir()) / "robustness_doctor_missing";
  fs::remove_all(dir);
  std::ostringstream os;
  EXPECT_EQ(run_doctor(dir.string(), false, os), 0);
  EXPECT_NE(os.str().find("empty cache"), std::string::npos) << os.str();
}

// --- Driver contract ---------------------------------------------------------

int run_driver(const std::vector<std::string>& args) {
  std::vector<const char*> argv{"bricksim"};
  for (const auto& a : args) argv.push_back(a.c_str());
  return driver_main(static_cast<int>(argv.size()), argv.data());
}

TEST(DriverFault, DegradedRunExitsThreeThenResumeCompletesClean) {
  const fs::path root = fresh_dir("robustness_driver");
  const std::string cache = (root / "cache").string();
  const std::string ref_cache = (root / "ref_cache").string();
  const std::vector<std::string> base = {
      "run", "cpu_crossplatform", "--n", "64", "--jobs", "1"};

  // Reference: a clean run in its own cache.
  std::vector<std::string> ref = base;
  ref.insert(ref.end(), {"--out", (root / "ref").string(), "--cache-dir",
                         ref_cache});
  testing::internal::CaptureStdout();
  ASSERT_EQ(run_driver(ref), 0);
  const std::string ref_stdout = testing::internal::GetCapturedStdout();

  // Degraded: one injected launch failure.  Every artifact is still
  // written, the hole renders as FAILED, the exit code is 3.
  std::vector<std::string> bad = base;
  bad.insert(bad.end(), {"--out", (root / "bad").string(), "--cache-dir",
                         cache, "--fault-inject", "launch@1"});
  testing::internal::CaptureStdout();
  testing::internal::CaptureStderr();
  EXPECT_EQ(run_driver(bad), 3);
  const std::string bad_stdout = testing::internal::GetCapturedStdout();
  testing::internal::GetCapturedStderr();
  EXPECT_NE(bad_stdout.find("FAILED"), std::string::npos);
  EXPECT_EQ(slurp(root / "bad" / "cpu_crossplatform" / "output.txt"),
            bad_stdout);

  const json::Value summary =
      json::Value::parse(slurp(root / "bad" / "run_summary.json"));
  EXPECT_EQ(summary.at("experiment_status").at("cpu_crossplatform")
                .as_string(),
            "degraded");
  const json::Value& failures = summary.at("failures");
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].at("site").as_string(), "launch");
  EXPECT_NE(failures[0].at("platform").as_string(), "");
  EXPECT_NE(failures[0].at("stencil").as_string(), "");
  EXPECT_NE(failures[0].at("error").as_string().find("fault injected"),
            std::string::npos);
  EXPECT_GT(summary.at("cache").at("shards_written").as_long(), 0);

  // Resume without the fault: only the hole is simulated, the output is
  // byte-identical to the never-faulted reference, and the now-clean
  // sweep enters the cache.
  std::vector<std::string> resume = base;
  resume.insert(resume.end(), {"--out", (root / "resumed").string(),
                               "--cache-dir", cache, "--resume"});
  testing::internal::CaptureStdout();
  EXPECT_EQ(run_driver(resume), 0);
  const std::string resumed_stdout = testing::internal::GetCapturedStdout();
  EXPECT_EQ(resumed_stdout, ref_stdout);
  const json::Value resumed_summary =
      json::Value::parse(slurp(root / "resumed" / "run_summary.json"));
  EXPECT_EQ(resumed_summary.at("cache").at("configs_simulated").as_long(),
            1);
  EXPECT_GT(resumed_summary.at("cache").at("shards_resumed").as_long(), 0);
  EXPECT_EQ(resumed_summary.at("experiment_status")
                .at("cpu_crossplatform").as_string(),
            "ok");

  // Warm rerun replays the artifact: the degraded output never entered
  // the cache, the clean one did.
  std::vector<std::string> warm = base;
  warm.insert(warm.end(), {"--out", (root / "warm").string(), "--cache-dir",
                           cache});
  testing::internal::CaptureStdout();
  EXPECT_EQ(run_driver(warm), 0);
  EXPECT_EQ(testing::internal::GetCapturedStdout(), ref_stdout);
  const json::Value warm_summary =
      json::Value::parse(slurp(root / "warm" / "run_summary.json"));
  EXPECT_EQ(warm_summary.at("cache").at("artifact_hits").as_long(), 1);
  EXPECT_EQ(warm_summary.at("cache").at("configs_simulated").as_long(), 0);
  fs::remove_all(root);
}

TEST(DriverFault, EmitterFailureIsIsolatedAndNamed) {
  const fs::path root = fresh_dir("robustness_driver_emit");
  testing::internal::CaptureStdout();
  testing::internal::CaptureStderr();
  EXPECT_EQ(run_driver({"run", "table2", "--out", (root / "out").string(),
                        "--no-cache", "--fault-inject", "emit[table2]@1"}),
            3);
  const std::string out = testing::internal::GetCapturedStdout();
  testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[experiment table2 failed:"), std::string::npos);

  const json::Value summary =
      json::Value::parse(slurp(root / "out" / "run_summary.json"));
  EXPECT_EQ(summary.at("experiment_status").at("table2").as_string(),
            "failed");
  const json::Value& failures = summary.at("failures");
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].at("experiment").as_string(), "table2");
  EXPECT_EQ(failures[0].at("site").as_string(), "emit");
  // The partial output still landed on disk.
  EXPECT_TRUE(fs::exists(root / "out" / "table2" / "output.txt"));
  fs::remove_all(root);
}

TEST(DriverFault, QuarantineCounterReachesRunSummary) {
  const fs::path root = fresh_dir("robustness_driver_quarantine");
  const std::string cache = (root / "cache").string();
  const std::vector<std::string> base = {"run",       "cpu_crossplatform",
                                         "--n",       "64",
                                         "--jobs",    "1",
                                         "--cache-dir", cache};
  auto with_out = [&](const std::string& out) {
    std::vector<std::string> args = base;
    args.insert(args.end(), {"--out", (root / out).string()});
    return args;
  };
  testing::internal::CaptureStdout();
  ASSERT_EQ(run_driver(with_out("cold")), 0);
  const std::string cold_stdout = testing::internal::GetCapturedStdout();

  // Corrupt both the sweep entry and the artifact entry: the warm run
  // must quarantine them, re-simulate, and still match byte for byte.
  int flipped = 0;
  for (const auto& e : fs::recursive_directory_iterator(cache))
    if (e.is_regular_file()) {
      flip_body_byte(e.path());
      ++flipped;
    }
  ASSERT_GE(flipped, 2);

  testing::internal::CaptureStdout();
  testing::internal::CaptureStderr();
  EXPECT_EQ(run_driver(with_out("healed")), 0);
  const std::string healed_stdout = testing::internal::GetCapturedStdout();
  const std::string warnings = testing::internal::GetCapturedStderr();
  EXPECT_EQ(healed_stdout, cold_stdout);
  EXPECT_NE(warnings.find("quarantin"), std::string::npos) << warnings;
  const json::Value summary =
      json::Value::parse(slurp(root / "healed" / "run_summary.json"));
  EXPECT_GE(summary.at("cache").at("entries_quarantined").as_long(), 2);
  EXPECT_EQ(summary.at("cache").at("artifact_hits").as_long(), 0);
  fs::remove_all(root);
}

TEST(DriverFault, DoctorCommandReportsEmptyCache) {
  const fs::path dir =
      fs::path(testing::TempDir()) / "robustness_driver_doctor";
  fs::remove_all(dir);
  testing::internal::CaptureStdout();
  EXPECT_EQ(run_driver({"doctor", "--cache-dir", dir.string()}), 0);
  EXPECT_NE(testing::internal::GetCapturedStdout().find("empty cache"),
            std::string::npos);
}

// Regression for the concurrent-store race: two writers persisting the
// same fingerprint used to share one "<path>.tmp" staging file, so an
// interleaved write+rename could publish a torn entry (caught only later
// by the checksum) or fail outright.  Staging names are now unique per
// writer; concurrent stores must always leave one valid entry and no
// stray staging files.
TEST(CacheFile, ConcurrentStoresOfOneEntryNeverTearIt) {
  const fs::path dir = fresh_dir("bricksim_concurrent_store");
  const SweepConfig config = small_config();
  const Sweep sweep = run_sweep(config);
  constexpr int kWriters = 8;
  constexpr int kRounds = 20;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w)
    writers.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r)
        store_cached_sweep(dir.string(), sweep);
    });
  for (auto& t : writers) t.join();

  // Exactly one published entry, readable and equal to what was stored.
  const std::optional<Sweep> loaded = load_cached_sweep(dir.string(), config);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(dump(*loaded), dump(sweep));
  int entries = 0, stray = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.find(".tmp") != std::string::npos)
      ++stray;
    else
      ++entries;
  }
  EXPECT_EQ(entries, 1);
  EXPECT_EQ(stray, 0);
  // And doctor agrees the cache is healthy.
  const DoctorReport report = doctor_scan(dir.string(), false);
  EXPECT_EQ(report.entries.size(), 1u);
  EXPECT_EQ(report.ok, 1);
  EXPECT_EQ(report.stale, 0);
  EXPECT_EQ(report.corrupt, 0);
  EXPECT_EQ(report.quarantined, 0);
}

}  // namespace
}  // namespace bricksim::harness
