// Unit and property tests for the brick layout: decomposition geometry,
// adjacency invariants, host<->brick round trips, and the storage-order
// independence that the adjacency indirection buys.
#include <gtest/gtest.h>

#include <set>

#include "brick/brick.h"
#include "common/rng.h"

namespace bricksim::brick {
namespace {

TEST(BrickDecomp, GeometryAndCounts) {
  const BrickDecomp d({64, 16, 8}, {32, 4, 4});
  EXPECT_EQ(d.grid_extents(), (Vec3{4, 6, 4}));
  EXPECT_EQ(d.blocks(), (Vec3{2, 4, 2}));
  EXPECT_EQ(d.num_bricks(), 96);
  EXPECT_EQ(d.adjacency().size(), 96u * 27);
  EXPECT_EQ(d.block_to_brick().size(), 16u);
}

TEST(BrickDecomp, RejectsIndivisibleDomains) {
  EXPECT_THROW(BrickDecomp({65, 16, 8}, {32, 4, 4}), Error);
  EXPECT_THROW(BrickDecomp({64, 18, 8}, {32, 4, 4}), Error);
  EXPECT_THROW(BrickDecomp({64, 16, 8}, {0, 4, 4}), Error);
}

TEST(BrickDecomp, SelfNeighborIsIdentity) {
  const BrickDecomp d({32, 8, 8}, {16, 4, 4});
  const auto adj = d.adjacency();
  for (long b = 0; b < d.num_bricks(); ++b)
    EXPECT_EQ(adj[b * 27 + neighbor_code(0, 0, 0)], b);
}

TEST(BrickDecomp, AdjacencyIsReciprocalForInteriorBricks) {
  const BrickDecomp d({32, 16, 16}, {16, 4, 4});
  const auto adj = d.adjacency();
  const Vec3 g = d.grid_extents();
  for (int gk = 1; gk + 1 < g.k; ++gk)
    for (int gj = 1; gj + 1 < g.j; ++gj)
      for (int gi = 1; gi + 1 < g.i; ++gi) {
        const std::uint32_t id = d.brick_at({gi, gj, gk});
        for (int dk = -1; dk <= 1; ++dk)
          for (int dj = -1; dj <= 1; ++dj)
            for (int di = -1; di <= 1; ++di) {
              const std::uint32_t nbr = adj[id * 27 + neighbor_code(di, dj, dk)];
              // Walking back must return home.
              EXPECT_EQ(adj[nbr * 27 + neighbor_code(-di, -dj, -dk)], id);
            }
      }
}

TEST(BrickDecomp, BlockToBrickSkipsGhostLayer) {
  const BrickDecomp d({32, 8, 8}, {16, 4, 4});
  const Vec3 bl = d.blocks();
  for (int bk = 0; bk < bl.k; ++bk)
    for (int bj = 0; bj < bl.j; ++bj)
      for (int bi = 0; bi < bl.i; ++bi)
        EXPECT_EQ(d.block_to_brick()[linear_index({bi, bj, bk}, bl)],
                  d.brick_at({bi + 1, bj + 1, bk + 1}));
}

TEST(BrickDecomp, ShuffledOrderIsAPermutation) {
  const BrickDecomp d({32, 16, 16}, {16, 4, 4}, /*shuffled=*/true, 99);
  std::set<std::uint32_t> ids;
  const Vec3 g = d.grid_extents();
  for (int gk = 0; gk < g.k; ++gk)
    for (int gj = 0; gj < g.j; ++gj)
      for (int gi = 0; gi < g.i; ++gi) ids.insert(d.brick_at({gi, gj, gk}));
  EXPECT_EQ(static_cast<long>(ids.size()), d.num_bricks());
  EXPECT_EQ(*ids.rbegin(), static_cast<std::uint32_t>(d.num_bricks() - 1));
}

TEST(BrickedArray, HostRoundTripInterior) {
  const Vec3 n{32, 8, 8};
  const BrickDecomp d(n, {16, 4, 4});
  BrickedArray ba(d);
  HostGrid host(n, {2, 2, 2}), back(n, {0, 0, 0});
  SplitMix64 rng(5);
  host.fill_random(rng);
  ba.from_host(host);
  ba.to_host(back);
  for (int k = 0; k < n.k; ++k)
    for (int j = 0; j < n.j; ++j)
      for (int i = 0; i < n.i; ++i)
        EXPECT_EQ(back.at(i, j, k), host.at(i, j, k));
}

TEST(BrickedArray, GhostValuesCopiedIntoGhostBricks) {
  const Vec3 n{16, 4, 4};
  const BrickDecomp d(n, {16, 4, 4});
  BrickedArray ba(d);
  HostGrid host(n, {2, 2, 2});
  host.fill_linear();
  ba.from_host(host);
  EXPECT_EQ(ba.at(-1, 0, 0), host.at(-1, 0, 0));
  EXPECT_EQ(ba.at(0, -2, 3), host.at(0, -2, 3));
  EXPECT_EQ(ba.at(16, 3, 5), host.at(16, 3, 5));
}

TEST(BrickedArray, RowsAreContiguousInMemory) {
  // The defining property of the layout: a brick's (vj, vk) row occupies
  // consecutive storage locations.
  const Vec3 n{32, 8, 8};
  const BrickDecomp d(n, {16, 4, 4});
  BrickedArray ba(d);
  HostGrid host(n, {0, 0, 0});
  host.fill_linear(1.0, 0.0, 0.0);  // value == i
  ba.from_host(host);
  // Find element (0,0,0) in raw storage; the next 15 must be 1..15 (the
  // rest of its row, i-contiguous).
  const auto raw = ba.raw();
  const bElem* p = &ba.at(0, 0, 0);
  for (int l = 0; l < 16; ++l) EXPECT_EQ(p[l], static_cast<double>(l));
  EXPECT_GE(p, raw.data());
  EXPECT_LT(p + 16, raw.data() + raw.size());
}

/// Property: the logical content is independent of the brick storage order.
class ShuffledOrder : public testing::TestWithParam<std::uint64_t> {};

TEST_P(ShuffledOrder, LayoutPermutationPreservesLogicalContent) {
  const Vec3 n{32, 8, 8};
  const BrickDecomp natural(n, {16, 4, 4});
  const BrickDecomp shuffled(n, {16, 4, 4}, true, GetParam());
  BrickedArray a(natural), b(shuffled);
  HostGrid host(n, {2, 2, 2});
  SplitMix64 rng(GetParam() + 1);
  host.fill_random(rng);
  a.from_host(host);
  b.from_host(host);
  for (int k = -2; k < n.k + 2; ++k)
    for (int j = -2; j < n.j + 2; ++j)
      for (int i = -2; i < n.i + 2; ++i)
        ASSERT_EQ(a.at(i, j, k), b.at(i, j, k))
            << "(" << i << "," << j << "," << k << ") seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShuffledOrder,
                         testing::Values(1u, 2u, 42u, 0xdeadbeefu));

}  // namespace
}  // namespace bricksim::brick
