// Unit and property tests for the Belady register allocator: budgets,
// spill accounting, and -- the load-bearing property -- functional
// equivalence of the rewritten program, verified by executing original and
// allocated programs on the SIMT machine and comparing stored outputs.
#include <gtest/gtest.h>

#include "codegen/codegen.h"
#include "common/error.h"
#include "common/rng.h"
#include "dsl/stencil.h"
#include "ir/regalloc.h"
#include "simt/machine.h"

namespace bricksim::ir {
namespace {

MemRef array_ref(int grid, int di) {
  MemRef m;
  m.grid = grid;
  m.space = Space::Array;
  m.di = di;
  return m;
}

/// A chain program with `width` simultaneously-live values: loads w vectors,
/// then sums them pairwise in reverse order so all stay live until the end.
Program wide_program(int live_width) {
  Program p(8);
  std::vector<int> vs;
  for (int n = 0; n < live_width; ++n) vs.push_back(p.load(array_ref(0, 8 * n)));
  int acc = vs[0];
  for (int n = 1; n < live_width; ++n) acc = p.add(acc, vs[n]);
  p.store(acc, array_ref(1, 0));
  return p;
}

TEST(RegAlloc, NoSpillsUnderBudget) {
  const Program p = wide_program(6);
  const RegAllocResult r = allocate_registers(p, 16);
  EXPECT_EQ(r.spill_slots, 0);
  EXPECT_EQ(r.spill_stores, 0);
  EXPECT_EQ(r.spill_loads, 0);
  EXPECT_LE(r.regs_used, 16);
  EXPECT_NO_THROW(r.program.verify());
}

TEST(RegAlloc, SpillsAppearOverBudget) {
  const Program p = wide_program(20);
  const RegAllocResult r = allocate_registers(p, 8);
  EXPECT_GT(r.spill_slots, 0);
  EXPECT_GT(r.spill_stores, 0);
  EXPECT_GT(r.spill_loads, 0);
  const InstStats st = r.program.stats();
  EXPECT_EQ(st.spill_stores, r.spill_stores);
  EXPECT_EQ(st.spill_loads, r.spill_loads);
}

TEST(RegAlloc, SpillCountMonotoneInBudget) {
  const Program p = wide_program(24);
  int prev = 1 << 30;
  for (int budget : {8, 12, 16, 24, 32}) {
    const RegAllocResult r = allocate_registers(p, budget);
    EXPECT_LE(r.spill_loads, prev) << "budget " << budget;
    prev = r.spill_loads;
  }
  EXPECT_EQ(allocate_registers(p, 32).spill_slots, 0);
}

TEST(RegAlloc, RejectsTinyBudget) {
  const Program p = wide_program(4);
  EXPECT_THROW(allocate_registers(p, 3), Error);
}

TEST(RegAlloc, PhysicalRegistersStayWithinBudget) {
  const Program p = wide_program(30);
  const RegAllocResult r = allocate_registers(p, 10);
  for (const Inst& in : r.program.insts()) {
    if (in.dst >= 0) {
      EXPECT_LT(in.dst, 10);
    }
    if (in.a >= 0) {
      EXPECT_LT(in.a, 10);
    }
    if (in.b >= 0) {
      EXPECT_LT(in.b, 10);
    }
    if (in.c >= 0) {
      EXPECT_LT(in.c, 10);
    }
  }
}

/// Property: allocation at ANY budget preserves program semantics.
struct EquivCase {
  std::string stencil;
  int budget;
};

class AllocEquivalence : public testing::TestWithParam<EquivCase> {};

TEST_P(AllocEquivalence, AllocatedProgramComputesSameValues) {
  const auto& [name, budget] = GetParam();
  dsl::Stencil st = name == "cube2" ? dsl::Stencil::cube(2)
                    : name == "cube1" ? dsl::Stencil::cube(1)
                                      : dsl::Stencil::star(4);
  // Lower for the array layout so a flat binding suffices, then allocate
  // at the tight budget under test and at an effectively unlimited budget.
  const auto lowered =
      codegen::lower(st, codegen::Variant::ArrayCodegen, 8);
  const RegAllocResult tight = allocate_registers(lowered.program, budget);
  const RegAllocResult loose = allocate_registers(lowered.program, 256);

  SplitMix64 rng(123);
  // Offsets reach +-4 in every dimension around an 8x4x4 block; place the
  // block at (8, 8, 8) inside a padded grid so everything stays in range.
  const Vec3 padded{32, 16, 16};
  std::vector<double> in(static_cast<std::size_t>(padded.volume()));
  for (double& v : in) v = rng.next_double(-1, 1);

  auto run = [&](const Program& prog) {
    arch::GpuArch gpu = arch::make_a100();
    gpu.num_cores = 1;
    simt::Machine machine(gpu);
    std::vector<double> data_in = in;
    std::vector<double> data_out(in.size(), 0.0);
    simt::DeviceAllocator dev(128);
    simt::GridBinding gi;
    gi.padded = padded;
    gi.ghost = {8, 8, 8};
    gi.device_base = dev.allocate(data_in.size() * kElemBytes);
    gi.data = data_in.data();
    gi.len = data_in.size();
    simt::GridBinding go = gi;
    go.device_base = dev.allocate(data_out.size() * kElemBytes);
    go.data = data_out.data();
    simt::Kernel kernel;
    kernel.program = &prog;
    kernel.blocks = {1, 1, 1};
    kernel.tile = {8, 4, 4};
    kernel.grids = {gi, go};
    for (int n = 0; n < prog.num_constants(); ++n)
      kernel.constants.push_back(0.25 * (n + 1));
    machine.run(kernel, simt::ExecMode::Functional);
    return data_out;
  };

  const auto got = run(tight.program);
  const auto expect = run(loose.program);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t n = 0; n < got.size(); ++n)
    ASSERT_EQ(got[n], expect[n]) << "element " << n << " budget " << budget;
}

INSTANTIATE_TEST_SUITE_P(
    BudgetsAndStencils, AllocEquivalence,
    testing::Values(EquivCase{"star4", 8}, EquivCase{"star4", 16},
                    EquivCase{"star4", 48}, EquivCase{"cube1", 8},
                    EquivCase{"cube1", 24}, EquivCase{"cube2", 8},
                    EquivCase{"cube2", 16}, EquivCase{"cube2", 64}),
    [](const testing::TestParamInfo<EquivCase>& info) {
      return info.param.stencil + "_b" + std::to_string(info.param.budget);
    });

}  // namespace
}  // namespace bricksim::ir
