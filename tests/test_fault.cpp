// Unit tests for the deterministic fault-injection framework: spec
// parsing, hit counting (nth / persistent / context-filtered), throw
// sites, seeded payload mutation, and the disarmed zero-count contract.
#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "common/fault.h"

namespace bricksim::fault {
namespace {

TEST(FaultSpec, SiteNamesRoundTrip) {
  for (int s = 0; s < kNumSites; ++s) {
    const Site site = static_cast<Site>(s);
    const auto parsed = parse_site(site_name(site));
    ASSERT_TRUE(parsed.has_value()) << site_name(site);
    EXPECT_EQ(*parsed, site);
  }
  EXPECT_FALSE(parse_site("no.such.site").has_value());
  EXPECT_FALSE(parse_site("").has_value());
}

TEST(FaultSpec, ParsesClausesSeedMatchAndPersistence) {
  const FaultPlan plan = FaultPlan::parse(
      "seed=42,launch@3,cache.read.corrupt[sweep-]@2+,emit[fig3]@1");
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.clauses.size(), 3u);
  EXPECT_EQ(plan.clauses[0].site, Site::Launch);
  EXPECT_EQ(plan.clauses[0].nth, 3);
  EXPECT_FALSE(plan.clauses[0].persistent);
  EXPECT_EQ(plan.clauses[0].match, "");
  EXPECT_EQ(plan.clauses[1].site, Site::CacheReadCorrupt);
  EXPECT_EQ(plan.clauses[1].match, "sweep-");
  EXPECT_EQ(plan.clauses[1].nth, 2);
  EXPECT_TRUE(plan.clauses[1].persistent);
  EXPECT_EQ(plan.clauses[2].site, Site::Emit);
  EXPECT_EQ(plan.clauses[2].match, "fig3");
}

TEST(FaultSpec, DefaultsAndTolerances) {
  // A trailing comma is tolerated; an empty spec is an empty plan.
  const FaultPlan plan = FaultPlan::parse("launch@1,");
  ASSERT_EQ(plan.clauses.size(), 1u);
  EXPECT_EQ(plan.clauses[0].nth, 1);
  EXPECT_EQ(plan.seed, 1u);
  EXPECT_TRUE(FaultPlan::parse("").empty());
}

TEST(FaultSpec, RejectsMalformedClauses) {
  EXPECT_THROW(FaultPlan::parse("no.such.site@1"), Error);
  EXPECT_THROW(FaultPlan::parse("launch"), Error);  // missing @<nth>
  EXPECT_THROW(FaultPlan::parse("launch@0"), Error);
  EXPECT_THROW(FaultPlan::parse("launch@-2"), Error);
  EXPECT_THROW(FaultPlan::parse("launch@abc"), Error);
  EXPECT_THROW(FaultPlan::parse("seed=notanumber"), Error);
  EXPECT_THROW(FaultPlan::parse("launch[unclosed@1"), Error);
  EXPECT_THROW(FaultPlan::parse(",,"), Error);
}

TEST(FaultFire, NthHitFiresExactlyOnce) {
  ScopedPlan plan("launch@3");
  EXPECT_FALSE(fire(Site::Launch));
  EXPECT_FALSE(fire(Site::Launch));
  EXPECT_TRUE(fire(Site::Launch));
  EXPECT_FALSE(fire(Site::Launch));  // one-shot: only the 3rd hit
  EXPECT_EQ(hits(Site::Launch), 4);
  EXPECT_EQ(hits(Site::Emit), 0);
}

TEST(FaultFire, PersistentFiresFromNthOn) {
  ScopedPlan plan("cache.read.short@2+");
  EXPECT_FALSE(fire(Site::CacheReadShort, "a"));
  EXPECT_TRUE(fire(Site::CacheReadShort, "b"));
  EXPECT_TRUE(fire(Site::CacheReadShort, "c"));
}

TEST(FaultFire, MatchFilterCountsOnlyMatchingContexts) {
  ScopedPlan plan("launch[7pt bricks]@2");
  EXPECT_FALSE(fire(Site::Launch, "A100/CUDA 13pt bricks codegen"));
  EXPECT_FALSE(fire(Site::Launch, "A100/CUDA 7pt bricks codegen"));  // 1st
  EXPECT_FALSE(fire(Site::Launch, "A100/CUDA 7pt array"));
  EXPECT_TRUE(fire(Site::Launch, "A100/SYCL 7pt bricks codegen"));   // 2nd
}

TEST(FaultFire, ThrowIfCarriesSiteAndContext) {
  ScopedPlan plan("roofline@1");
  try {
    throw_if(Site::Roofline, "PVC-Stack/SYCL");
    FAIL() << "expected a fault::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("fault injected"), std::string::npos);
    EXPECT_NE(what.find("roofline"), std::string::npos);
    EXPECT_NE(what.find("PVC-Stack/SYCL"), std::string::npos);
  }
}

TEST(FaultFire, DisarmedNeverCountsOrFires) {
  EXPECT_FALSE(armed());
  EXPECT_FALSE(fire(Site::Launch));
  EXPECT_NO_THROW(throw_if(Site::Launch));
  {
    ScopedPlan plan("launch@1");
    EXPECT_TRUE(armed());
  }
  EXPECT_FALSE(armed());
  // Counters from an earlier plan are reset on the next arm.
  ScopedPlan plan("launch@1");
  EXPECT_EQ(hits(Site::Launch), 0);
}

TEST(FaultMutate, DeterministicPerSeedAndSite) {
  const std::string payload(257, 'x');
  std::string torn1, torn2, corrupt1;
  {
    ScopedPlan plan("seed=7,cache.write.torn@1");
    torn1 = mutate(Site::CacheWriteTorn, payload);
    corrupt1 = mutate(Site::CacheReadCorrupt, payload);
  }
  {
    ScopedPlan plan("seed=7,cache.write.torn@1");
    torn2 = mutate(Site::CacheWriteTorn, payload);
  }
  EXPECT_EQ(torn1, torn2);  // same seed: bit-identical mutation

  // Torn/short truncate to a proper prefix; corrupt keeps the length and
  // flips exactly one byte.
  EXPECT_LT(torn1.size(), payload.size());
  EXPECT_EQ(payload.rfind(torn1, 0), 0u);
  ASSERT_EQ(corrupt1.size(), payload.size());
  int diffs = 0;
  for (std::size_t i = 0; i < payload.size(); ++i)
    diffs += corrupt1[i] != payload[i];
  EXPECT_EQ(diffs, 1);
}

}  // namespace
}  // namespace bricksim::fault
