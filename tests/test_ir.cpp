// Unit tests for the vector IR: builder, verifier, statistics, printing.
#include <gtest/gtest.h>

#include "common/error.h"
#include "ir/program.h"

namespace bricksim::ir {
namespace {

MemRef array_ref(int grid, int di, int dj, int dk) {
  MemRef m;
  m.grid = grid;
  m.space = Space::Array;
  m.di = di;
  m.dj = dj;
  m.dk = dk;
  return m;
}

TEST(Program, BuilderProducesVerifiableSsa) {
  Program p(32);
  const int c = p.add_constant("a0");
  const int v = p.load(array_ref(0, 0, 0, 0));
  const int w = p.load(array_ref(0, 1, 0, 0));
  const int s = p.add(v, w);
  const int r = p.mul_const(s, c);
  p.store(r, array_ref(1, 0, 0, 0));
  EXPECT_NO_THROW(p.verify());
  EXPECT_EQ(p.num_vregs(), 4);
  EXPECT_EQ(p.num_grids(), 2);
}

TEST(Program, ConstantsDeduplicateByName) {
  Program p(32);
  EXPECT_EQ(p.add_constant("a0"), 0);
  EXPECT_EQ(p.add_constant("a1"), 1);
  EXPECT_EQ(p.add_constant("a0"), 0);
  EXPECT_EQ(p.num_constants(), 2);
}

TEST(Program, VerifyRejectsUseBeforeDef) {
  Program p(32);
  Inst in;
  in.op = Op::VAddV;
  in.dst = p.new_vreg();
  in.a = p.new_vreg();  // never defined
  in.b = in.a;
  p.insts().push_back(in);
  EXPECT_THROW(p.verify(), Error);
}

TEST(Program, VerifyRejectsBadShift) {
  Program p(8);
  const int a = p.zero();
  const int b = p.zero();
  p.align(a, b, 3);  // fine
  EXPECT_NO_THROW(p.verify());
  Inst bad;
  bad.op = Op::VAlign;
  bad.dst = p.new_vreg();
  bad.a = a;
  bad.b = b;
  bad.shift = 9;  // > W
  p.insts().push_back(bad);
  EXPECT_THROW(p.verify(), Error);
}

TEST(Program, VerifyRejectsBadConstantIndex) {
  Program p(8);
  Inst in;
  in.op = Op::VSetC;
  in.dst = p.new_vreg();
  in.cidx = 0;  // no constants registered
  p.insts().push_back(in);
  EXPECT_THROW(p.verify(), Error);
}

TEST(Program, VerifyRejectsBadSpillSlot) {
  Program p(8);
  Inst in;
  in.op = Op::VLoad;
  in.dst = p.new_vreg();
  in.mem.space = Space::Spill;
  in.mem.slot = 0;  // no slots declared
  p.insts().push_back(in);
  EXPECT_THROW(p.verify(), Error);
}

TEST(Program, StatsCountEveryClass) {
  Program p(32);
  const int c = p.add_constant("a0");
  const int v = p.load(array_ref(0, 0, 0, 0));
  const int w = p.load(array_ref(0, 1, 0, 0));
  const int al = p.align(v, w, 4);
  const int s = p.add(v, al);
  const int f = p.fma_const(s, w, c);
  const int m = p.mul(f, f);
  p.int_ops(5);
  p.store(m, array_ref(1, 0, 0, 0));

  const InstStats st = p.stats();
  EXPECT_EQ(st.loads, 2);
  EXPECT_EQ(st.stores, 1);
  EXPECT_EQ(st.aligns, 1);
  EXPECT_EQ(st.fp_insts, 3);            // add, fmac, mul
  EXPECT_EQ(st.flops_per_lane, 1 + 2 + 1);
  EXPECT_EQ(st.int_ops, 5);
  // total: 2 loads + 1 store + 1 align + 3 fp + 5 int-op units
  EXPECT_EQ(st.total_insts, 12);
}

TEST(Program, SpillOpsCountedSeparately) {
  Program p(8);
  p.set_num_spill_slots(1);
  const int v = p.zero();
  Inst st;
  st.op = Op::VStore;
  st.a = v;
  st.mem.space = Space::Spill;
  st.mem.slot = 0;
  p.insts().push_back(st);
  Inst ld;
  ld.op = Op::VLoad;
  ld.dst = p.new_vreg();
  ld.mem.space = Space::Spill;
  ld.mem.slot = 0;
  p.insts().push_back(ld);
  EXPECT_NO_THROW(p.verify());
  const InstStats s = p.stats();
  EXPECT_EQ(s.spill_stores, 1);
  EXPECT_EQ(s.spill_loads, 1);
  EXPECT_EQ(s.loads, 0);
  EXPECT_EQ(s.stores, 0);
}

TEST(Program, PrinterShowsOpsAndOperands) {
  Program p(16);
  const int c = p.add_constant("MPI_B0");
  const int v = p.load(array_ref(0, -1, 0, 2));
  const int r = p.mul_const(v, c);
  p.store(r, array_ref(1, 0, 0, 0));
  const std::string text = p.to_string();
  EXPECT_NE(text.find("vload"), std::string::npos);
  EXPECT_NE(text.find("vmulc"), std::string::npos);
  EXPECT_NE(text.find("MPI_B0"), std::string::npos);
  EXPECT_NE(text.find("arr -1,0,2"), std::string::npos);
  EXPECT_NE(text.find("W=16"), std::string::npos);
}

TEST(Program, IntOpsZeroIsNoop) {
  Program p(8);
  p.int_ops(0);
  p.int_ops(-3);
  EXPECT_TRUE(p.insts().empty());
}

TEST(Program, BrickRefRoundTripsThroughPrinter) {
  Program p(8);
  MemRef m;
  m.grid = 0;
  m.space = Space::Brick;
  m.nbr_di = -1;
  m.nbr_dj = 1;
  m.vj = 3;
  m.vk = 2;
  p.load(m);
  EXPECT_NE(p.to_string().find("brk nbr(-1,1,0) v(0,3,2)"), std::string::npos);
}

}  // namespace
}  // namespace bricksim::ir
