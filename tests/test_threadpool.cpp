// Unit tests for the thread pool underneath the parallel sweep executor:
// slot-exact parallel_for semantics, exception propagation, and the
// serial/parallel equivalence contract.  This suite (with test_harness's
// determinism tests) is the one scripts/ci.sh runs under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <vector>

#include "common/error.h"
#include "common/threadpool.h"

namespace bricksim {
namespace {

TEST(ThreadPool, DefaultJobsIsPositive) { EXPECT_GE(default_jobs(), 1); }

// effective_jobs is the harness-level clamp that fixed the --jobs=4 >
// --jobs=1 inversion: requests beyond the hardware are capped at
// default_jobs() unless BRICKSIM_OVERSUBSCRIBE=1 opts back in (what the
// TSan CI leg and the jobs-invariance tests rely on).
TEST(ThreadPool, EffectiveJobsClampsToHardware) {
  unsetenv("BRICKSIM_OVERSUBSCRIBE");
  const int hw = default_jobs();
  EXPECT_EQ(effective_jobs(0), hw);   // 0 means "use the hardware"
  EXPECT_EQ(effective_jobs(-3), hw);  // negative likewise
  EXPECT_EQ(effective_jobs(1), 1);
  EXPECT_EQ(effective_jobs(hw), hw);
  EXPECT_EQ(effective_jobs(hw + 1), hw);      // oversubscription clamped
  EXPECT_EQ(effective_jobs(1000 * hw), hw);
}

TEST(ThreadPool, EffectiveJobsOversubscribeEscapeHatch) {
  const int hw = default_jobs();
  setenv("BRICKSIM_OVERSUBSCRIBE", "1", 1);
  EXPECT_EQ(effective_jobs(hw + 7), hw + 7);
  EXPECT_EQ(effective_jobs(0), hw);  // still defaults to the hardware
  // Only the exact value "1" opts in.
  setenv("BRICKSIM_OVERSUBSCRIBE", "yes", 1);
  EXPECT_EQ(effective_jobs(hw + 7), hw);
  setenv("BRICKSIM_OVERSUBSCRIBE", "10", 1);
  EXPECT_EQ(effective_jobs(hw + 7), hw);
  setenv("BRICKSIM_OVERSUBSCRIBE", "0", 1);
  EXPECT_EQ(effective_jobs(hw + 7), hw);
  unsetenv("BRICKSIM_OVERSUBSCRIBE");
  EXPECT_EQ(effective_jobs(hw + 7), hw);
}

TEST(ThreadPool, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.jobs(), 1);
  std::atomic<int> ran{0};
  pool.submit([&] { ++ran; });
  pool.wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.jobs(), 4);
  std::atomic<long> sum{0};
  for (long t = 1; t <= 100; ++t) pool.submit([&sum, t] { sum += t; });
  pool.wait();
  EXPECT_EQ(sum.load(), 5050);
  // The pool is reusable after wait().
  pool.submit([&sum] { sum += 1; });
  pool.wait();
  EXPECT_EQ(sum.load(), 5051);
}

TEST(ThreadPool, WaitRethrowsTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw Error("task failed"); });
  EXPECT_THROW(pool.wait(), Error);
  // The error is cleared: subsequent rounds succeed.
  std::atomic<int> ran{0};
  pool.submit([&] { ++ran; });
  pool.wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ParallelFor, EveryIndexExactlyOnceIntoItsSlot) {
  for (int jobs : {1, 2, 8, 33}) {
    const long n = 257;
    std::vector<long> slots(n, -1);
    parallel_for(jobs, n, [&](long i) { slots[i] = i * i; });
    for (long i = 0; i < n; ++i)
      EXPECT_EQ(slots[i], i * i) << "jobs=" << jobs << " i=" << i;
  }
}

TEST(ParallelFor, ResultsIndependentOfJobCount) {
  const long n = 64;
  auto run = [n](int jobs) {
    std::vector<double> out(n);
    parallel_for(jobs, n, [&](long i) {
      double acc = 0;
      for (long t = 0; t <= i; ++t) acc += 1.0 / (1.0 + t);
      out[i] = acc;
    });
    return out;
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST(ParallelFor, EmptyAndSingleton) {
  int calls = 0;
  parallel_for(8, 0, [&](long) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(8, 1, [&](long i) {
    EXPECT_EQ(i, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, MoreJobsThanIndices) {
  std::vector<int> slots(3, 0);
  parallel_for(64, 3, [&](long i) { slots[i] = 1; });
  EXPECT_EQ(std::accumulate(slots.begin(), slots.end(), 0), 3);
}

// The continue-on-error twin of parallel_for: parallel_for_collect runs
// EVERY index even when some throw, and reports the failures (sorted by
// index) instead of aborting -- the semantics the fault-tolerant sweep
// builds on.  The fail-fast tests above pin parallel_for's contract; this
// block pins the collecting one, at both job counts.
TEST(ParallelForCollect, EmptyOnSuccessAndEveryIndexRuns) {
  for (int jobs : {1, 4}) {
    std::vector<long> slots(257, -1);
    const auto failures =
        parallel_for_collect(jobs, 257, [&](long i) { slots[i] = i; });
    EXPECT_TRUE(failures.empty()) << "jobs=" << jobs;
    for (long i = 0; i < 257; ++i) EXPECT_EQ(slots[i], i);
  }
}

TEST(ParallelForCollect, CollectsAllFailuresSortedAndRunsTheRest) {
  for (int jobs : {1, 4}) {
    std::vector<int> ran(100, 0);
    const auto failures = parallel_for_collect(jobs, 100, [&](long i) {
      ran[i] = 1;
      if (i % 30 == 7) throw Error("boom at " + std::to_string(i));
    });
    // Unlike parallel_for, every index ran -- failures cost only
    // themselves.
    EXPECT_EQ(std::accumulate(ran.begin(), ran.end(), 0), 100)
        << "jobs=" << jobs;
    ASSERT_EQ(failures.size(), 4u) << "jobs=" << jobs;  // 7, 37, 67, 97
    long expected[] = {7, 37, 67, 97};
    for (std::size_t f = 0; f < failures.size(); ++f) {
      EXPECT_EQ(failures[f].index, expected[f]);
      EXPECT_EQ(failures[f].what,
                "boom at " + std::to_string(expected[f]));
    }
  }
}

TEST(ParallelForCollect, NonStdExceptionsBecomeUnknown) {
  const auto failures =
      parallel_for_collect(1, 2, [&](long i) { if (i == 1) throw 42; });
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].index, 1);
  EXPECT_EQ(failures[0].what, "unknown exception");
}

TEST(ParallelFor, RethrowsLowestFailingIndex) {
  for (int jobs : {1, 4}) {
    try {
      parallel_for(jobs, 100, [&](long i) {
        if (i >= 5) throw Error("boom at " + std::to_string(i));
      });
      FAIL() << "should have thrown";
    } catch (const Error& e) {
      // Workers race past index 5 before the abort propagates, but the
      // reported exception is the lowest index that actually failed, and
      // with jobs=1 that is exactly 5.
      if (jobs == 1)
        EXPECT_NE(std::string(e.what()).find("boom at 5"), std::string::npos);
      else
        EXPECT_NE(std::string(e.what()).find("boom at "), std::string::npos);
    }
  }
}

// The priority overload underneath the SweepBroker's admission queue:
// higher priority dequeues first, ties dequeue FIFO, and the default
// overload is exactly priority 0.
TEST(ThreadPool, PriorityOrdersPendingTasks) {
  ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool gate_open = false;
  std::vector<int> order;
  // Park the single worker so everything below genuinely queues.
  pool.submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return gate_open; });
  });
  auto record = [&](int id) {
    return [&, id] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(id);
    };
  };
  pool.submit(0, record(1));
  pool.submit(2, record(2));
  pool.submit(1, record(3));
  pool.submit(2, record(4));  // same priority as 2: FIFO behind it
  pool.submit(record(5));     // default overload == priority 0, after 1
  {
    std::lock_guard<std::mutex> lock(mu);
    gate_open = true;
  }
  cv.notify_all();
  pool.wait();
  EXPECT_EQ(order, (std::vector<int>{2, 4, 3, 1, 5}));
}

TEST(ThreadPool, NegativePriorityRunsLast) {
  ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool gate_open = false;
  std::vector<int> order;
  pool.submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return gate_open; });
  });
  pool.submit(-5, [&] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(-5);
  });
  pool.submit(0, [&] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(0);
  });
  {
    std::lock_guard<std::mutex> lock(mu);
    gate_open = true;
  }
  cv.notify_all();
  pool.wait();
  EXPECT_EQ(order, (std::vector<int>{0, -5}));
}

}  // namespace
}  // namespace bricksim
