// Round-trip properties of the JSON layer and every serializer the sweep
// cache depends on: from_json(to_json(x)) == x with bit-exact doubles, and
// a cold-store/warm-load sweep equality proof (the contract behind
// `bricksim all` replaying cached results identically to a fresh
// simulation).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "common/error.h"
#include "common/json.h"
#include "common/table.h"
#include "harness/harness.h"
#include "harness/registry.h"
#include "harness/sweepcache.h"
#include "metrics/metrics.h"
#include "profiler/profiler.h"
#include "roofline/roofline.h"

namespace bricksim {
namespace {

// --- format_double -----------------------------------------------------------

TEST(FormatDouble, SpecialValuesRoundTrip) {
  for (const double v : {0.0, 1.0, -1.0, 0.1, 1.0 / 3.0, 1e300, 1e-300,
                         5e-324 /* min denormal */, 123456789.123456789,
                         std::numeric_limits<double>::max(),
                         std::numeric_limits<double>::min()}) {
    const double back = json::parse_double(json::format_double(v));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back),
              std::bit_cast<std::uint64_t>(v))
        << json::format_double(v);
  }
}

TEST(FormatDouble, NegativeZeroKeepsSign) {
  const std::string s = json::format_double(-0.0);
  const double back = json::parse_double(s);
  EXPECT_TRUE(std::signbit(back)) << s;
}

TEST(FormatDouble, NonFiniteTokens) {
  EXPECT_EQ(json::format_double(std::numeric_limits<double>::infinity()),
            "Infinity");
  EXPECT_EQ(json::format_double(-std::numeric_limits<double>::infinity()),
            "-Infinity");
  EXPECT_EQ(json::format_double(std::nan("")), "NaN");
  EXPECT_TRUE(std::isnan(json::parse_double("NaN")));
  EXPECT_EQ(json::parse_double("-Infinity"),
            -std::numeric_limits<double>::infinity());
}

TEST(FormatDouble, RandomBitPatternsAreBitExact) {
  // SplitMix64 over raw bit patterns: every finite double, including
  // denormals and extreme exponents, must survive format -> parse exactly.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state] {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  int tested = 0;
  for (int n = 0; n < 20000; ++n) {
    const std::uint64_t bits = next();
    const double v = std::bit_cast<double>(bits);
    if (!std::isfinite(v)) continue;
    ++tested;
    const double back = json::parse_double(json::format_double(v));
    ASSERT_EQ(std::bit_cast<std::uint64_t>(back), bits)
        << json::format_double(v);
  }
  EXPECT_GT(tested, 15000);  // non-finite patterns are rare
}

// --- Value parse/dump --------------------------------------------------------

TEST(JsonValue, DumpParseRoundTripPreservesStructure) {
  json::Value v = json::Value::object();
  v["zulu"] = 1;  // insertion order, not alphabetical
  v["alpha"] = std::string("two\nlines \"quoted\" \\ and \x01 control");
  v["pi"] = 3.141592653589793;
  v["neg"] = -0.0;
  v["big"] = 123456789012345678ll;
  v["flag"] = true;
  v["nothing"] = json::Value();
  json::Value arr = json::Value::array();
  arr.push_back(1);
  arr.push_back("x");
  json::Value inner = json::Value::object();
  inner["k"] = 2.5;
  arr.push_back(inner);
  v["arr"] = arr;

  for (const int indent : {-1, 1, 2}) {
    const json::Value back = json::Value::parse(v.dump(indent));
    EXPECT_EQ(back, v) << "indent " << indent;
  }
  // Insertion order is preserved through the round trip.
  const json::Value back = json::Value::parse(v.dump());
  EXPECT_EQ(back.items().front().first, "zulu");
}

TEST(JsonValue, IntegersKeepTheirText) {
  EXPECT_EQ(json::Value(123456789012345678ll).dump(), "123456789012345678");
  EXPECT_EQ(json::Value(std::uint64_t{18446744073709551615ull}).dump(),
            "18446744073709551615");
  const json::Value v = json::Value::parse("18446744073709551615");
  EXPECT_EQ(v.as_u64(), 18446744073709551615ull);
  EXPECT_EQ(v.dump(), "18446744073709551615");
}

TEST(JsonValue, NegativeZeroTokenStaysADouble) {
  const json::Value v = json::Value::parse("-0");
  EXPECT_TRUE(std::signbit(v.as_double()));
  EXPECT_EQ(v.dump(), "-0");
}

TEST(JsonValue, UnicodeEscapes) {
  const json::Value v = json::Value::parse("\"A\\u0042\\u00e9\"");
  EXPECT_EQ(v.as_string(), "AB\xc3\xa9");
}

TEST(JsonValue, StrictParserRejectsMalformedInput) {
  EXPECT_THROW(json::Value::parse("{\"a\":1,}"), Error);
  EXPECT_THROW(json::Value::parse("{\"a\":1} trailing"), Error);
  EXPECT_THROW(json::Value::parse("{\"a\":1,\"a\":2}"), Error);  // dup key
  EXPECT_THROW(json::Value::parse("\"bad \\q escape\""), Error);
  EXPECT_THROW(json::Value::parse("01"), Error);
  EXPECT_THROW(json::Value::parse(""), Error);
}

// --- Serializers -------------------------------------------------------------

profiler::Measurement sample_measurement() {
  profiler::Measurement m;
  m.stencil = "star,\"13pt\"";  // adversarial name: CSV metacharacters
  m.variant = "bricks codegen";
  m.arch = "A100";
  m.pm = "CUDA";
  m.domain = {128, 192, 256};
  m.seconds = 1.0 / 3.0;
  m.gflops = 1234.5678901234567;
  m.ai = 0.1;
  m.ai_executed = 0.30000000000000004;
  m.hbm_bytes = 18446744073709551615ull;
  m.hbm_read_bytes = 1ull << 62;
  m.hbm_write_bytes = 3;
  m.l2_bytes = 5;
  m.l1_bytes = 7;
  m.flops_executed = 11;
  m.flops_normalized = 123456789012345;
  m.warp_insts = 13;
  m.t_hbm = 1e-300;
  m.t_l2 = 5e-324;
  m.t_issue = 1e300;
  m.bottleneck = "hbm";
  m.regs_used = 42;
  m.spill_slots = -1;
  m.read_streams = 9;
  m.used_scatter = true;
  m.check_errors = 2;
  m.check_warnings = 3;
  m.check_insts = 1000000;
  return m;
}

TEST(Serialize, MeasurementRoundTripIsExact) {
  const profiler::Measurement m = sample_measurement();
  const profiler::Measurement back =
      profiler::measurement_from_json(profiler::to_json(m));
  EXPECT_EQ(back, m);
  // And through a full text round trip (dump + parse), still exact.
  const profiler::Measurement back2 = profiler::measurement_from_json(
      json::Value::parse(profiler::to_json(m).dump(2)));
  EXPECT_EQ(back2, m);
}

TEST(Serialize, EmpiricalRooflineRoundTripIsExact) {
  roofline::EmpiricalRoofline e;
  e.roofline = {1555.0e9 / 3.0, 9.7e12};
  e.points = {{0.125, 0.12499999999999997, 194.0 + 1.0 / 3.0, 1555.4},
              {64.0, 63.9, 9700.0, 151.5}};
  const roofline::EmpiricalRoofline back =
      roofline::empirical_roofline_from_json(
          json::Value::parse(roofline::to_json(e).dump()));
  EXPECT_EQ(back, e);
}

TEST(Serialize, CheckRollupRoundTrip) {
  const metrics::CheckRollup r{120, 987654321012345, 0, 7, 113};
  EXPECT_EQ(metrics::check_rollup_from_json(
                json::Value::parse(metrics::to_json(r).dump())),
            r);
}

TEST(Serialize, ExperimentTimingRoundTripIsExact) {
  const harness::ExperimentTiming t{"fig3", 12.0 + 1.0 / 3.0, true};
  EXPECT_EQ(harness::experiment_timing_from_json(harness::to_json(t)), t);
  // And through a full text round trip (dump + parse), still exact.
  EXPECT_EQ(harness::experiment_timing_from_json(
                json::Value::parse(harness::to_json(t).dump(2))),
            t);
  const harness::ExperimentTiming fresh{"lint", 0.0078125, false};
  EXPECT_EQ(harness::experiment_timing_from_json(
                json::Value::parse(harness::to_json(fresh).dump())),
            fresh);
}

// run_summary.json's "wall_seconds" must equal the sum of its per-
// experiment "timings" entries EXACTLY (same doubles, same left-to-right
// order) -- including for replayed (artifact-cache hit) experiments, whose
// timing is the cache load, not an emitter run.  A reader reconciling the
// two fields must never see them drift.
TEST(Serialize, RunSummaryWallSecondsIsSumOfTimings) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(testing::TempDir()) / "timing_invariant";
  fs::remove_all(root);
  fs::create_directories(root);
  const auto run = [&](const std::string& out) {
    const std::string cache = (root / "cache").string();
    const char* argv[] = {"bricksim",    "run",        "table1",
                          "table2",      "--out",      out.c_str(),
                          "--cache-dir", cache.c_str()};
    testing::internal::CaptureStdout();
    const int rc = harness::driver_main(8, argv);
    testing::internal::GetCapturedStdout();
    return rc;
  };
  ASSERT_EQ(run((root / "cold").string()), 0);
  ASSERT_EQ(run((root / "warm").string()), 0);

  for (const char* which : {"cold", "warm"}) {
    std::ifstream in(root / which / "run_summary.json");
    std::ostringstream os;
    os << in.rdbuf();
    const json::Value summary = json::Value::parse(os.str());
    const json::Value& timings = summary.at("timings");
    double sum = 0;
    for (std::size_t n = 0; n < timings.size(); ++n) {
      const harness::ExperimentTiming t =
          harness::experiment_timing_from_json(timings[n]);
      EXPECT_GT(t.seconds, 0) << which << " " << t.experiment;
      // The warm run served both experiments from the artifact cache.
      EXPECT_EQ(t.replayed, std::string(which) == "warm") << t.experiment;
      sum += t.seconds;
    }
    EXPECT_EQ(timings.size(), 2u) << which;
    EXPECT_EQ(summary.at("wall_seconds").as_double(), sum) << which;
  }
  fs::remove_all(root);
}

TEST(Serialize, TableRoundTrip) {
  Table t({"a", "b,c"});
  t.add_row({"plain", "with \"quotes\" and,commas"});
  t.add_row({"", "multi\nline"});
  EXPECT_EQ(Table::from_json(json::Value::parse(t.to_json().dump(1))), t);
}

// --- Sweep cache -------------------------------------------------------------

harness::SweepConfig small_config() {
  harness::SweepConfig config;
  config.domain = {64, 64, 64};
  config.platforms = {model::paper_platforms().front()};
  config.stencils = {dsl::Stencil::star(1), dsl::Stencil::cube(1)};
  config.variants = {codegen::Variant::Array,
                     codegen::Variant::BricksCodegen};
  return config;
}

TEST(SweepCache, SweepJsonRoundTripIsExact) {
  const harness::Sweep sweep = harness::run_sweep(small_config());
  const harness::Sweep back = harness::sweep_from_json(
      json::Value::parse(harness::sweep_to_json(sweep).dump(1)),
      sweep.config);
  EXPECT_EQ(back.measurements, sweep.measurements);
  EXPECT_EQ(back.rooflines, sweep.rooflines);
  // The loader rebuilt the find index.
  const auto* m = back.find("7pt", "bricks codegen", "A100/CUDA");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(*m, *sweep.find("7pt", "bricks codegen", "A100/CUDA"));
}

TEST(SweepCache, FromJsonRejectsMismatchedConfig) {
  const harness::Sweep sweep = harness::run_sweep(small_config());
  const json::Value v = harness::sweep_to_json(sweep);
  harness::SweepConfig other = small_config();
  other.engine = simt::Engine::Interp;
  EXPECT_THROW(harness::sweep_from_json(v, other), Error);
}

TEST(SweepCache, ColdStoreWarmLoadIsBitIdentical) {
  const std::string dir =
      (std::filesystem::path(testing::TempDir()) / "bricksim_sweepcache")
          .string();
  std::filesystem::remove_all(dir);
  const harness::SweepConfig config = small_config();
  EXPECT_FALSE(harness::load_cached_sweep(dir, config).has_value());

  const harness::Sweep cold = harness::run_sweep(config);
  harness::store_cached_sweep(dir, cold);
  const auto warm = harness::load_cached_sweep(dir, config);
  ASSERT_TRUE(warm.has_value());
  EXPECT_EQ(warm->measurements, cold.measurements);
  EXPECT_EQ(warm->rooflines, cold.rooflines);
  // Re-serializing the warm sweep reproduces the cache file text exactly.
  EXPECT_EQ(harness::sweep_to_json(*warm).dump(1),
            harness::sweep_to_json(cold).dump(1));

  // A corrupt entry reads as a miss, never as wrong data.
  {
    std::ofstream out(harness::cache_entry_path(dir, config));
    out << "{ not json";
  }
  EXPECT_FALSE(harness::load_cached_sweep(dir, config).has_value());
  std::filesystem::remove_all(dir);
}

TEST(SweepCache, FingerprintCoversResultReachingKnobs) {
  const harness::SweepConfig base = small_config();
  const std::string fp = harness::fingerprint(base);

  harness::SweepConfig c = base;
  c.engine = simt::Engine::Interp;
  EXPECT_NE(harness::fingerprint(c), fp);

  c = base;
  c.check_mode = analysis::CheckMode::Off;
  EXPECT_NE(harness::fingerprint(c), fp);

  c = base;
  c.domain = {128, 64, 64};
  EXPECT_NE(harness::fingerprint(c), fp);

  c = base;
  c.stencils = {dsl::Stencil::star(2), dsl::Stencil::cube(1)};
  EXPECT_NE(harness::fingerprint(c), fp);

  c = base;
  c.cg_opts.force_gather = true;
  EXPECT_NE(harness::fingerprint(c), fp);

  c = base;
  c.variants = {codegen::Variant::Array};
  EXPECT_NE(harness::fingerprint(c), fp);
}

TEST(SweepCache, FingerprintIgnoresPresentationKnobs) {
  const harness::SweepConfig base = small_config();
  harness::SweepConfig c = base;
  c.jobs = 7;
  c.shards = 5;  // intra-kernel sharding is bit-identical, so cache-neutral
  c.progress = true;
  c.csv = true;
  // Checkpoint/resume are presentation-side too: where shards land (and
  // whether they replay) cannot affect measurement content, so a resumed
  // run hits the same cache entry as the uninterrupted one.
  c.checkpoint_dir = "/tmp/somewhere-else";
  c.resume = true;
  EXPECT_EQ(harness::fingerprint(c), harness::fingerprint(base));
}

}  // namespace
}  // namespace bricksim
